//! Dense occupancy index over the rectangle currently inhabited by the
//! swarm — the *reference* implementation the tiled index is tested
//! against.
//!
//! This was the engine's occupancy index before the tiled refactor
//! ([`crate::tile`]): a dense `Vec<u32>` (robot id per cell, sentinel
//! for empty) makes every probe one bounds check plus one array read,
//! but memory is O(bounding-box area) — a sparse two-cluster swarm 10⁵
//! cells apart would demand ~10¹⁰ cells before the first round runs —
//! and every escape past the rectangle's edge is a stop-the-world full
//! copy ([`OccupancyGrid::grow_to_include`]). [`Swarm`](crate::Swarm)
//! therefore uses [`crate::tile::TileIndex`]; the dense grid stays as
//! the independent oracle for the tiled-vs-dense equivalence proptests
//! and *refuses* (loud panic, see [`DENSE_CELL_LIMIT`]) rather than
//! allocating a bounding box it cannot honestly back.

use crate::geom::{Bounds, Point};

/// Sentinel id for an empty cell.
pub const EMPTY: u32 = u32::MAX;

/// Hard cap on the dense grid's backing store (2³⁸ bytes would be
/// absurd; 2²⁸ cells ≈ 1 GiB of `u32`). Beyond this the constructor
/// panics instead of OOM-killing the process half-way through an
/// allocation — which is exactly the failure mode the tiled index
/// exists to remove.
pub const DENSE_CELL_LIMIT: u128 = 1 << 28;

impl std::fmt::Debug for OccupancyGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OccupancyGrid")
            .field("origin", &self.origin)
            .field("width", &self.width)
            .field("height", &self.height)
            .finish_non_exhaustive()
    }
}

#[derive(Clone)]
pub struct OccupancyGrid {
    origin: Point,
    width: i32,
    height: i32,
    cells: Vec<u32>,
}

impl OccupancyGrid {
    /// Create a grid covering `bounds` inflated by `margin` cells.
    ///
    /// # Panics
    /// Refuses (panics) when the rectangle exceeds [`DENSE_CELL_LIMIT`]
    /// cells: a dense index over a sparse far-flung swarm is a memory
    /// bomb, and the caller should be on [`crate::tile::TileIndex`].
    pub fn covering(bounds: Bounds, margin: i32) -> Self {
        let b = bounds.inflated(margin.max(1));
        let width = b.width();
        let height = b.height();
        let cells = width as u128 * height as u128;
        assert!(
            cells <= DENSE_CELL_LIMIT,
            "dense occupancy refuses a {width}x{height} bounding box ({cells} cells > \
             {DENSE_CELL_LIMIT}); use the tiled index (memory ~ occupied tiles) instead"
        );
        OccupancyGrid {
            origin: b.min,
            width,
            height,
            cells: vec![EMPTY; (width as usize) * (height as usize)],
        }
    }

    #[inline]
    fn index(&self, p: Point) -> Option<usize> {
        let dx = p.x - self.origin.x;
        let dy = p.y - self.origin.y;
        if dx < 0 || dy < 0 || dx >= self.width || dy >= self.height {
            None
        } else {
            Some(dy as usize * self.width as usize + dx as usize)
        }
    }

    /// Robot id occupying `p`, if any. Cells outside the backing
    /// rectangle are by definition empty.
    #[inline]
    pub fn get(&self, p: Point) -> Option<u32> {
        let i = self.index(p)?;
        let v = self.cells[i];
        (v != EMPTY).then_some(v)
    }

    #[inline]
    pub fn occupied(&self, p: Point) -> bool {
        self.get(p).is_some()
    }

    /// Mark `p` as occupied by robot `id`, growing the backing store if
    /// `p` lies outside it. Returns the id previously stored at `p`.
    pub fn set(&mut self, p: Point, id: u32) -> Option<u32> {
        if self.index(p).is_none() {
            self.grow_to_include(p);
        }
        let i = self.index(p).expect("grown grid contains p");
        let old = self.cells[i];
        self.cells[i] = id;
        (old != EMPTY).then_some(old)
    }

    /// Mark `p` as empty. Returns the id previously stored there.
    pub fn clear(&mut self, p: Point) -> Option<u32> {
        let i = self.index(p)?;
        let old = self.cells[i];
        self.cells[i] = EMPTY;
        (old != EMPTY).then_some(old)
    }

    fn grow_to_include(&mut self, p: Point) {
        // Grow generously so repeated single-cell escapes do not cause
        // quadratic re-allocation.
        let pad = 16.max(self.width / 4).max(self.height / 4);
        let old_max = Point::new(self.origin.x + self.width - 1, self.origin.y + self.height - 1);
        let b = Bounds {
            min: Point::new(self.origin.x.min(p.x - pad), self.origin.y.min(p.y - pad)),
            max: Point::new(old_max.x.max(p.x + pad), old_max.y.max(p.y + pad)),
        };
        let mut next = OccupancyGrid::covering(b, 0);
        for dy in 0..self.height {
            let src = dy as usize * self.width as usize;
            let world_y = self.origin.y + dy;
            let dst_x = (self.origin.x - next.origin.x) as usize;
            let dst_y = (world_y - next.origin.y) as usize;
            let dst = dst_y * next.width as usize + dst_x;
            next.cells[dst..dst + self.width as usize]
                .copy_from_slice(&self.cells[src..src + self.width as usize]);
        }
        *self = next;
    }

    /// Cells currently backed by the grid (diagnostic).
    pub fn capacity_cells(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Bounds, Point};

    fn grid() -> OccupancyGrid {
        OccupancyGrid::covering(Bounds::of([Point::new(0, 0), Point::new(9, 9)]).unwrap(), 2)
    }

    #[test]
    fn set_get_clear() {
        let mut g = grid();
        assert_eq!(g.get(Point::new(3, 3)), None);
        assert_eq!(g.set(Point::new(3, 3), 7), None);
        assert_eq!(g.get(Point::new(3, 3)), Some(7));
        assert!(g.occupied(Point::new(3, 3)));
        assert_eq!(g.clear(Point::new(3, 3)), Some(7));
        assert_eq!(g.get(Point::new(3, 3)), None);
    }

    #[test]
    fn out_of_range_is_empty() {
        let g = grid();
        assert_eq!(g.get(Point::new(1000, 1000)), None);
        assert!(!g.occupied(Point::new(-1000, 0)));
    }

    #[test]
    fn grows_on_escape() {
        let mut g = grid();
        let far = Point::new(500, -500);
        g.set(far, 42);
        assert_eq!(g.get(far), Some(42));
        // Previously stored values survive growth.
        g.set(Point::new(0, 0), 1);
        g.set(Point::new(-600, 600), 2);
        assert_eq!(g.get(Point::new(0, 0)), Some(1));
        assert_eq!(g.get(far), Some(42));
        assert_eq!(g.get(Point::new(-600, 600)), Some(2));
    }

    #[test]
    fn set_reports_overwrite() {
        let mut g = grid();
        g.set(Point::new(1, 1), 3);
        assert_eq!(g.set(Point::new(1, 1), 4), Some(3));
        assert_eq!(g.get(Point::new(1, 1)), Some(4));
    }

    /// The dense grid must *refuse* a sparse far-flung bounding box
    /// (the clusters-family shape) instead of attempting an O(area)
    /// allocation — the failure the tiled index exists to remove.
    #[test]
    #[should_panic(expected = "dense occupancy refuses")]
    fn refuses_sparse_cluster_bounding_boxes() {
        let b = Bounds::of([Point::new(0, 0), Point::new(100_000, 100_000)]).unwrap();
        let _ = OccupancyGrid::covering(b, 1); // ~10^10 cells
    }
}
