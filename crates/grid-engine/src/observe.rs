//! Per-round observation records: the engine-side half of the trace
//! subsystem.
//!
//! When an observer is attached ([`crate::Engine::set_observer`]), the
//! engine emits one [`RoundRecord`] after every round: who the
//! scheduler activated, every world-frame move, the round's merge
//! count, and a digest of the post-round swarm. The record is a pure
//! function of the run (robot *states* are strategy-internal and
//! deliberately excluded — any state divergence that matters shows up
//! as a positional divergence within a round or two, and positions are
//! what the model's invariants are stated over), so recording the same
//! scenario twice yields identical record streams regardless of the
//! engine's worker-thread count.
//!
//! The `gather-trace` crate owns the binary wire format for these
//! records; this module only defines the in-memory shape so that
//! neither the engine nor `gather-bench` needs to depend on it.

use crate::scheduler::Activation;

/// One robot's world-frame move in a round. `robot` is the robot's
/// index *before* the round's merges; `dx`/`dy` are in `-1..=1` and
/// never both zero (robots that stay put are not listed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RobotMove {
    pub robot: u32,
    pub dx: i8,
    pub dy: i8,
}

/// Everything observable about one engine round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundRecord {
    /// The engine's round counter when the round started.
    pub round: u64,
    /// The scheduler's activation set for the round.
    pub activated: Activation,
    /// World-frame moves of the robots that changed position, in robot
    /// index order (pre-merge indices).
    pub moves: Vec<RobotMove>,
    /// Robots removed by merges this round.
    pub merged: u32,
    /// Robots alive after the round.
    pub population: u32,
    /// [`crate::Swarm::position_digest`] of the post-round swarm — the
    /// bit-exactness witness replay verifies against.
    pub digest: u64,
}

/// The observer callback the engine invokes once per round. Boxed so
/// `Engine` stays free of extra type parameters; recording sinks that
/// need to surface data use shared interior mutability
/// (`Rc<RefCell<…>>`) — the engine calls the observer on the stepping
/// thread only.
pub type BoxedRoundObserver = Box<dyn FnMut(&RoundRecord)>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_compare_structurally() {
        let a = RoundRecord {
            round: 3,
            activated: Activation::All,
            moves: vec![RobotMove { robot: 1, dx: 1, dy: 0 }],
            merged: 1,
            population: 7,
            digest: 42,
        };
        let mut b = a.clone();
        assert_eq!(a, b);
        b.moves[0].dy = -1;
        assert_ne!(a, b);
    }
}
