//! Per-round observation records: the engine-side half of the trace
//! subsystem.
//!
//! When an observer is attached ([`crate::Engine::set_observer`]), the
//! engine emits one [`RoundRecord`] after every round: who the
//! scheduler activated, every world-frame move, the round's merge
//! count, and a digest of the post-round swarm. The record is a pure
//! function of the run (robot *states* are strategy-internal and
//! deliberately excluded — any state divergence that matters shows up
//! as a positional divergence within a round or two, and positions are
//! what the model's invariants are stated over), so recording the same
//! scenario twice yields identical record streams regardless of the
//! engine's worker-thread count.
//!
//! The `gather-trace` crate owns the binary wire format for these
//! records; this module only defines the in-memory shape so that
//! neither the engine nor `gather-bench` needs to depend on it.

use crate::scheduler::Activation;

/// One robot's world-frame move in a round. `robot` is the robot's
/// index *before* the round's merges; `dx`/`dy` are in `-1..=1` and
/// never both zero (robots that stay put are not listed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RobotMove {
    pub robot: u32,
    pub dx: i8,
    pub dy: i8,
}

/// A move *parked* this round under an ASYNC scheduler: robot `robot`
/// looked this round and will execute the world-frame step
/// (`dx`, `dy`) in `delay` rounds (`delay >= 1`; delay-0 looks commit
/// immediately and appear in [`RoundRecord::moves`] instead). Unlike
/// [`RobotMove`], the zero step is listed too — a robot that decided
/// to stay is still in flight and cannot look again until its
/// (empty) move falls due.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingMove {
    pub robot: u32,
    pub dx: i8,
    pub dy: i8,
    /// Rounds until the move commits, `1..=staleness`.
    pub delay: u32,
}

/// Everything observable about one engine round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundRecord {
    /// The engine's round counter when the round started.
    pub round: u64,
    /// The robots that *looked* this round: the scheduler's activation
    /// set, minus (under ASYNC) the robots mid-flight between look and
    /// move. Under ASYNC this subset may legitimately be empty — a
    /// round where every robot is in flight and none falls due is a
    /// true no-op round.
    pub activated: Activation,
    /// World-frame moves of the robots that changed position, in robot
    /// index order (pre-merge indices). Under ASYNC these are the moves
    /// that *committed* this round, which can include robots outside
    /// `activated` (their look happened rounds ago).
    pub moves: Vec<RobotMove>,
    /// Moves parked this round by an ASYNC scheduler, in robot index
    /// order; empty under every synchronous policy. Carried in the v2
    /// trace format so a resumed replay can reconstruct in-flight
    /// state; positions-only playback ignores it (pending moves do not
    /// touch positions until they commit and show up in `moves`).
    pub pending: Vec<PendingMove>,
    /// Robots removed by merges this round.
    pub merged: u32,
    /// Robots alive after the round.
    pub population: u32,
    /// [`crate::Swarm::position_digest`] of the post-round swarm — the
    /// bit-exactness witness replay verifies against.
    pub digest: u64,
}

/// The observer callback the engine invokes once per round. Boxed so
/// `Engine` stays free of extra type parameters; recording sinks that
/// need to surface data use shared interior mutability
/// (`Rc<RefCell<…>>`) — the engine calls the observer on the stepping
/// thread only.
pub type BoxedRoundObserver = Box<dyn FnMut(&RoundRecord)>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_compare_structurally() {
        let a = RoundRecord {
            round: 3,
            activated: Activation::All,
            moves: vec![RobotMove { robot: 1, dx: 1, dy: 0 }],
            pending: vec![PendingMove { robot: 2, dx: 0, dy: 0, delay: 2 }],
            merged: 1,
            population: 7,
            digest: 42,
        };
        let mut b = a.clone();
        assert_eq!(a, b);
        b.moves[0].dy = -1;
        assert_ne!(a, b);
        let mut c = a.clone();
        c.pending[0].delay = 3;
        assert_ne!(a, c, "pending state is part of the record identity");
    }
}
