//! Round phase profiler: attributes each engine round's wall time to
//! named phases (compute, merge detection, occupancy rebuild, survivor
//! compaction, …) plus per-shard imbalance in the parallel sections.
//!
//! The design generalises the observer hook's zero-cost-when-unset
//! pattern: the engine holds an `Option<BoxedProfileSink>`, and every
//! timing site goes through [`timed`], which calls the section closure
//! directly — no `Instant`, no branch-per-item — when no profile is
//! being collected. With a sink installed the engine emits one
//! [`RoundProfile`] per round, *after* the round's work, so profiling
//! can never perturb the simulation itself (the bit-identity tests pin
//! this).
//!
//! Allocation counting is feature-gated (`count-alloc`): the feature
//! installs a counting `#[global_allocator]` wrapper around the system
//! allocator, and [`allocation_count`] returns the process-global
//! allocation counter (`None` without the feature). The engine records
//! the per-round delta; because the counter is process-global, deltas
//! include allocations from other live threads — a documented
//! approximation that is exact for the single-campaign-thread case the
//! metric exists for.

use std::time::Instant;

/// Named phases of one engine round. The engine attributes wall time to
/// these slots; everything not covered (scheduler bookkeeping, stats
/// assembly) is the gap between [`RoundProfile::phases_total_ns`] and
/// `wall_ns`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Scheduler activation-set construction.
    Activate = 0,
    /// The look/compute parallel map (controller decisions).
    Compute = 1,
    /// Target-cell computation and move counting in the round-apply.
    ApplyTargets = 2,
    /// Merge detection: grouping robots by target cell and resolving
    /// survivors (sharded by tile on the parallel path).
    MergeDetect = 3,
    /// Occupancy-index rebuild: clearing old cells, setting survivors.
    OccupancyRebuild = 4,
    /// Survivor compaction: draining the robot vector in index order.
    Compact = 5,
    /// Observer record materialisation and emission.
    Observe = 6,
    /// Post-round invariant checks (connectivity, stall detection).
    Invariants = 7,
    /// Sparse-path active-list maintenance: stamping the round's movers
    /// and grouping the activation set into per-shard active lists so
    /// merge detection and the occupancy update touch only affected
    /// tiles.
    ActiveList = 8,
}

/// Number of phase slots in a [`RoundProfile`].
pub const PHASE_COUNT: usize = 9;

impl Phase {
    /// Every phase, in slot order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Activate,
        Phase::Compute,
        Phase::ApplyTargets,
        Phase::MergeDetect,
        Phase::OccupancyRebuild,
        Phase::Compact,
        Phase::Observe,
        Phase::Invariants,
        Phase::ActiveList,
    ];

    /// Stable snake_case name, used as the JSON/report field suffix.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Activate => "activate",
            Phase::Compute => "compute",
            Phase::ApplyTargets => "targets",
            Phase::MergeDetect => "merge_detect",
            Phase::OccupancyRebuild => "rebuild",
            Phase::Compact => "compact",
            Phase::Observe => "observe",
            Phase::Invariants => "invariants",
            Phase::ActiveList => "active_list",
        }
    }
}

/// One round's timing breakdown, emitted to the profile sink after the
/// round completes (on failing rounds too — a disconnection is still a
/// round that cost time).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundProfile {
    pub round: u64,
    /// Wall time of the whole `step()` call.
    pub wall_ns: u64,
    /// Per-phase wall time, indexed by `Phase as usize`.
    pub phase_ns: [u64; PHASE_COUNT],
    /// Fastest worked shard in the sharded merge-detect section, ns
    /// (0 when the round took the sequential path).
    pub shard_min_ns: u64,
    /// Slowest worked shard in the sharded merge-detect section, ns.
    pub shard_max_ns: u64,
    /// Fastest worked chunk in the parallel prefix-sum compaction, ns
    /// (0 when the round compacted sequentially or had no merges).
    pub compact_min_ns: u64,
    /// Slowest worked chunk in the parallel prefix-sum compaction, ns.
    pub compact_max_ns: u64,
    /// Allocations during the round (process-global delta); `None`
    /// unless the `count-alloc` feature is enabled.
    pub allocs: Option<u64>,
}

impl RoundProfile {
    /// Sum of the attributed phase times.
    pub fn phases_total_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Fraction of the round's wall time attributed to named phases
    /// (1.0 when `wall_ns` is zero — nothing was left unattributed).
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            1.0
        } else {
            self.phases_total_ns() as f64 / self.wall_ns as f64
        }
    }
}

/// A per-round profile consumer, owned by the engine.
pub type BoxedProfileSink = Box<dyn FnMut(&RoundProfile)>;

/// Time `f` into `prof`'s `phase` slot when a profile is being
/// collected; with profiling off this is a direct call — no clock read.
#[inline]
pub fn timed<T>(prof: &mut Option<&mut RoundProfile>, phase: Phase, f: impl FnOnce() -> T) -> T {
    match prof {
        Some(p) => {
            let start = Instant::now();
            let out = f();
            p.phase_ns[phase as usize] += start.elapsed().as_nanos() as u64;
            out
        }
        None => f(),
    }
}

/// Accumulated profile over a run: per-phase sums, wall time, shard
/// imbalance extremes, and the allocation total — the shape the bench
/// and campaign layers aggregate into their reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileTotals {
    pub rounds: u64,
    pub wall_ns: u64,
    pub phase_ns: [u64; PHASE_COUNT],
    /// Sum of per-round slowest-shard minus fastest-shard gaps, ns.
    pub shard_imbalance_ns: u64,
    /// Sum of per-round slowest-chunk minus fastest-chunk gaps in the
    /// parallel prefix-sum compaction, ns.
    pub compact_imbalance_ns: u64,
    /// Total allocations over profiled rounds; meaningful only when
    /// `allocs_counted` (the `count-alloc` feature was on).
    pub allocs: u64,
    pub allocs_counted: bool,
}

impl ProfileTotals {
    /// Fold one round's profile into the totals.
    pub fn add(&mut self, p: &RoundProfile) {
        self.rounds += 1;
        self.wall_ns += p.wall_ns;
        for (sum, &ns) in self.phase_ns.iter_mut().zip(&p.phase_ns) {
            *sum += ns;
        }
        self.shard_imbalance_ns += p.shard_max_ns.saturating_sub(p.shard_min_ns);
        self.compact_imbalance_ns += p.compact_max_ns.saturating_sub(p.compact_min_ns);
        if let Some(a) = p.allocs {
            self.allocs += a;
            self.allocs_counted = true;
        }
    }

    /// Total attributed phase time.
    pub fn phases_total_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Fraction of wall time attributed to named phases.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            1.0
        } else {
            self.phases_total_ns() as f64 / self.wall_ns as f64
        }
    }

    /// `phase`'s share of the total wall time.
    pub fn share(&self, phase: Phase) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.phase_ns[phase as usize] as f64 / self.wall_ns as f64
        }
    }

    /// Render the breakdown as aligned `phase  time  share` lines — the
    /// human-readable report `bench_engine --profile` prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "rounds {}, wall {:.3}s, attributed {:.1}%\n",
            self.rounds,
            self.wall_ns as f64 / 1e9,
            self.coverage() * 100.0,
        ));
        for phase in Phase::ALL {
            out.push_str(&format!(
                "  {:<12} {:>10.3}s  {:>5.1}%\n",
                phase.name(),
                self.phase_ns[phase as usize] as f64 / 1e9,
                self.share(phase) * 100.0,
            ));
        }
        out.push_str(&format!(
            "  {:<12} {:>10.3}s\n",
            "shard_gap",
            self.shard_imbalance_ns as f64 / 1e9,
        ));
        out.push_str(&format!(
            "  {:<12} {:>10.3}s\n",
            "compact_gap",
            self.compact_imbalance_ns as f64 / 1e9,
        ));
        if self.allocs_counted {
            out.push_str(&format!(
                "  allocs {} total, {:.1}/round\n",
                self.allocs,
                self.allocs as f64 / self.rounds.max(1) as f64,
            ));
        }
        out
    }
}

#[cfg(feature = "count-alloc")]
mod alloc_counter {
    //! Counting wrapper around the system allocator. Installed as the
    //! process global allocator when the `count-alloc` feature is on;
    //! counts allocation *events* (alloc, alloc_zeroed, realloc), not
    //! bytes — the metric the allocation-flat engine push tracks.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAllocator;

    // SAFETY: delegates every operation to `System`; the counter is a
    // relaxed atomic with no effect on allocation behaviour.
    unsafe impl GlobalAlloc for CountingAllocator {
        // SAFETY: forwards the caller's layout to `System` unchanged, so
        // `System`'s contract (valid for `layout`, or null) is ours.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: our caller's obligations for `layout` are exactly
            // `System::alloc`'s, and `layout` is forwarded verbatim.
            unsafe { System.alloc(layout) }
        }

        // SAFETY: forwards the caller's layout to `System` unchanged.
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `layout` is forwarded verbatim under the same
            // contract our caller already guaranteed.
            unsafe { System.alloc_zeroed(layout) }
        }

        // SAFETY: the caller guarantees `ptr` came from this allocator
        // with `layout` — which means from `System`, where it is
        // forwarded untouched along with `new_size`.
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `ptr` was allocated by `System` (all our paths
            // delegate there) and `layout`/`new_size` pass through as-is.
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        // SAFETY: the caller guarantees `ptr`/`layout` describe a live
        // allocation from this allocator, i.e. from `System`.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: `ptr` is a live `System` allocation with `layout`,
            // per our own caller contract.
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    pub fn allocation_count() -> Option<u64> {
        Some(ALLOCATIONS.load(Ordering::Relaxed))
    }
}

/// Process-global allocation-event counter, or `None` when the
/// `count-alloc` feature is off. Callers take before/after deltas.
#[cfg(feature = "count-alloc")]
pub fn allocation_count() -> Option<u64> {
    alloc_counter::allocation_count()
}

/// Process-global allocation-event counter, or `None` when the
/// `count-alloc` feature is off. Callers take before/after deltas.
#[cfg(not(feature = "count-alloc"))]
pub fn allocation_count() -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_slots_and_names_line_up() {
        for (slot, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(*phase as usize, slot);
        }
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), PHASE_COUNT, "duplicate phase name in {names:?}");
    }

    #[test]
    fn timed_accumulates_only_when_profiling() {
        let mut off: Option<&mut RoundProfile> = None;
        assert_eq!(timed(&mut off, Phase::Compute, || 7), 7);

        let mut profile = RoundProfile::default();
        let mut on = Some(&mut profile);
        let out = timed(&mut on, Phase::Compute, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            41
        });
        assert_eq!(out, 41);
        assert!(profile.phase_ns[Phase::Compute as usize] > 0);
        assert_eq!(profile.phase_ns[Phase::MergeDetect as usize], 0);
    }

    #[test]
    fn totals_fold_rounds_and_compute_shares() {
        let mut totals = ProfileTotals::default();
        let mut p = RoundProfile { round: 0, wall_ns: 100, ..Default::default() };
        p.phase_ns[Phase::Compute as usize] = 60;
        p.phase_ns[Phase::MergeDetect as usize] = 30;
        p.shard_min_ns = 5;
        p.shard_max_ns = 9;
        p.compact_min_ns = 2;
        p.compact_max_ns = 5;
        totals.add(&p);
        totals.add(&p);
        assert_eq!(totals.rounds, 2);
        assert_eq!(totals.wall_ns, 200);
        assert_eq!(totals.phases_total_ns(), 180);
        assert!((totals.coverage() - 0.9).abs() < 1e-9);
        assert!((totals.share(Phase::Compute) - 0.6).abs() < 1e-9);
        assert_eq!(totals.shard_imbalance_ns, 8);
        assert_eq!(totals.compact_imbalance_ns, 6);
        assert!(!totals.allocs_counted);
        let rendered = totals.render();
        assert!(rendered.contains("merge_detect"), "{rendered}");
        assert!(rendered.contains("compact_gap"), "{rendered}");
    }

    #[test]
    fn coverage_of_empty_profile_is_total() {
        assert_eq!(RoundProfile::default().coverage(), 1.0);
        assert_eq!(ProfileTotals::default().coverage(), 1.0);
    }

    #[test]
    fn allocation_counter_matches_feature_gate() {
        let count = allocation_count();
        if cfg!(feature = "count-alloc") {
            let before = count.expect("feature on");
            let v: Vec<u64> = Vec::with_capacity(64);
            drop(v);
            assert!(allocation_count().expect("feature on") > before);
        } else {
            assert_eq!(count, None);
        }
    }
}
