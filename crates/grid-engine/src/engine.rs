//! The round engine: drives look-compute-move rounds against a
//! [`Controller`] under a pluggable activation [`Scheduler`]
//! (FSYNC/SSYNC/round-robin) and enforces the model's global invariants.

use crate::connectivity::is_connected;
use crate::geom::{Bounds, V2};
use crate::metrics::{Metrics, RoundStats};
use crate::observe::{BoxedRoundObserver, PendingMove, RobotMove, RoundRecord};
use crate::parallel::parallel_map;
use crate::profile::{self, timed, BoxedProfileSink, Phase, RoundProfile};
use crate::scheduler::{async_delay, Activation, Scheduler};
use crate::swarm::{Action, OrientationMode, RobotState, Swarm};
use crate::view::View;
use std::fmt;

/// Shared synchronous context. FSYNC robots start simultaneously, so a
/// common round counter is part of the model (the paper's "every
/// (L = 22)-th round" check requires exactly this constant-memory
/// counter).
#[derive(Clone, Copy, Debug)]
pub struct RoundCtx {
    pub round: u64,
}

/// A distributed robot strategy: a pure function from a local view (and
/// the synchronous round counter) to an action. Implementations must be
/// `Sync` — the engine evaluates all robots in parallel.
pub trait Controller: Sync {
    type State: RobotState;

    /// The constant L1 viewing radius this strategy requires.
    fn radius(&self) -> i32;

    /// The *compute* step. Must only probe the view (locality is
    /// enforced by the view itself in debug builds).
    fn decide(&self, view: &View<'_, Self::State>, ctx: RoundCtx) -> Action<Self::State>;
}

/// How strictly the engine checks swarm connectivity after each round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnectivityCheck {
    /// Never check (fastest; for benches where the strategy is trusted).
    Never,
    /// Check every `k`-th round.
    Every(u64),
    /// Check after every round (tests).
    Always,
}

#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads for the compute step; 0 = available parallelism.
    pub threads: usize,
    pub connectivity: ConnectivityCheck,
    /// Keep per-round history in the metrics.
    pub keep_history: bool,
    /// Abort a run as stalled after this many consecutive rounds without
    /// a merge (generous multiple of the paper's L·n budget is set by
    /// callers; `u64::MAX` disables).
    pub stall_limit: u64,
    /// Which robots are activated each round. [`Scheduler::Fsync`] (the
    /// default) is bit-identical to the pre-policy engine.
    pub scheduler: Scheduler,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            connectivity: ConnectivityCheck::Every(64),
            keep_history: false,
            stall_limit: u64::MAX,
            scheduler: Scheduler::Fsync,
        }
    }
}

/// Why a run stopped before gathering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The strategy broke the swarm into pieces — a model violation.
    Disconnected { round: u64 },
    /// No merge happened for `stall_limit` consecutive rounds.
    Stalled { round: u64, streak: u64 },
    /// The caller's round budget ran out.
    RoundBudgetExhausted { round: u64 },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Disconnected { round } => {
                write!(f, "swarm disconnected in round {round}")
            }
            EngineError::Stalled { round, streak } => {
                write!(f, "no merge for {streak} rounds (at round {round})")
            }
            EngineError::RoundBudgetExhausted { round } => {
                write!(f, "round budget exhausted at round {round}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Outcome of a completed (gathered) run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Rounds until the swarm fit into a 2×2 area.
    pub rounds: u64,
    /// Initial robot count.
    pub initial_robots: usize,
    /// Robots remaining at the end (1..=4 when gathered).
    pub final_robots: usize,
    pub metrics: Metrics,
}

pub struct Engine<C: Controller> {
    pub swarm: Swarm<C::State>,
    pub controller: C,
    pub config: EngineConfig,
    round: u64,
    metrics: Metrics,
    observer: Option<BoxedRoundObserver>,
    profiler: Option<BoxedProfileSink>,
}

impl<C: Controller> std::fmt::Debug for Engine<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("round", &self.round)
            .field("robots", &self.swarm.len())
            .field("config", &self.config)
            .field("observer", &self.observer.is_some())
            .field("profiler", &self.profiler.is_some())
            .finish_non_exhaustive()
    }
}

impl<C: Controller> Engine<C> {
    pub fn new(swarm: Swarm<C::State>, controller: C, config: EngineConfig) -> Self {
        let metrics = Metrics::new(config.keep_history);
        Engine { swarm, controller, config, round: 0, metrics, observer: None, profiler: None }
    }

    /// Convenience constructor from bare positions.
    pub fn from_positions(
        positions: &[crate::geom::Point],
        orientation: OrientationMode,
        controller: C,
        config: EngineConfig,
    ) -> Self {
        Engine::new(Swarm::new(positions, orientation), controller, config)
    }

    pub fn round(&self) -> u64 {
        self.round
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub fn bounds(&self) -> Bounds {
        self.swarm.bounds()
    }

    /// Attach a per-round observer: called once after every round with
    /// the round's [`RoundRecord`] (activation set, world-frame moves,
    /// merge count, post-round swarm digest). The record stream is a
    /// pure function of the run — independent of the engine's
    /// worker-thread count — which is what the trace subsystem's
    /// bit-exact replay relies on. With no observer attached the round
    /// loop does zero extra work.
    pub fn set_observer(&mut self, observer: BoxedRoundObserver) {
        self.observer = Some(observer);
    }

    /// Detach the observer installed by [`Engine::set_observer`].
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    /// Attach a per-round profile sink: called once after every round
    /// (failing rounds included) with the round's [`RoundProfile`] —
    /// wall time attributed to named phases, shard imbalance in the
    /// parallel apply, and the allocation delta when the `count-alloc`
    /// feature is on. Profiling observes the round *after* its work, so
    /// results are bit-identical with and without a sink; with no sink
    /// attached the round loop reads no clocks at all.
    pub fn set_profiler(&mut self, profiler: BoxedProfileSink) {
        self.profiler = Some(profiler);
    }

    /// Detach the profile sink installed by [`Engine::set_profiler`].
    pub fn clear_profiler(&mut self) {
        self.profiler = None;
    }

    /// Execute one scheduler round: activate the scheduler's subset,
    /// compute their actions in parallel, and apply them simultaneously
    /// (inactive robots keep position and state). The apply itself also
    /// uses the configured worker threads — merge detection and the
    /// occupancy rebuild shard by tile, bit-identically to the
    /// sequential path. Under
    /// [`Scheduler::Fsync`] this is exactly the paper's FSYNC round.
    /// Activated robots all observe the engine's global round counter —
    /// the weaker schedulers relax *who* acts, not the common clock.
    /// Returns the round's statistics.
    pub fn step(&mut self) -> Result<RoundStats, EngineError> {
        // Profiling is pay-as-you-go like observation: with no sink
        // attached, `timed` degenerates to a direct call and no clock is
        // read anywhere in the round.
        let profiling = self.profiler.is_some();
        // audit: allow(wall-clock) only read when a profiler sink is
        // attached, and phase timings never feed back into round results
        let round_start = profiling.then(std::time::Instant::now);
        let allocs_before = if profiling { profile::allocation_count() } else { None };
        let mut profile_buf =
            profiling.then(|| RoundProfile { round: self.round, ..Default::default() });
        let mut prof = profile_buf.as_mut();

        let n = self.swarm.len();
        let ctx = RoundCtx { round: self.round };
        let radius = self.controller.radius();
        // Observation is pay-as-you-go: the activation clone, the
        // world-frame move list and the pending-move list are only
        // materialised when an observer is attached.
        let tracing = self.observer.is_some();
        let mut moves: Vec<RobotMove> = Vec::new();
        let mut pending: Vec<PendingMove> = Vec::new();
        let (recorded_activation, activated, outcome) = if let Scheduler::Async {
            seed,
            staleness,
        } = self.config.scheduler
        {
            self.step_async(
                seed,
                staleness,
                ctx,
                radius,
                tracing,
                &mut moves,
                &mut pending,
                &mut prof,
            )
        } else {
            let activation =
                timed(&mut prof, Phase::Activate, || self.config.scheduler.activate(self.round, n));
            let activated = activation.len(n);
            let swarm = &self.swarm;
            let controller = &self.controller;
            let decide = |i: usize| {
                let view = View::new(swarm, i, radius);
                controller.decide(&view, ctx)
            };
            let recorded_activation = tracing.then(|| activation.clone());
            let outcome = match activation {
                Activation::All => {
                    let actions: Vec<Action<C::State>> = timed(&mut prof, Phase::Compute, || {
                        parallel_map(n, self.config.threads, decide)
                    });
                    if tracing {
                        moves = timed(&mut prof, Phase::Observe, || {
                            world_moves(swarm, actions.iter().enumerate())
                        });
                    }
                    self.swarm.apply_threads_profiled(
                        actions,
                        self.config.threads,
                        prof.as_deref_mut(),
                    )
                }
                Activation::Subset(active) => {
                    let computed: Vec<Action<C::State>> = timed(&mut prof, Phase::Compute, || {
                        parallel_map(active.len(), self.config.threads, |j| decide(active[j]))
                    });
                    if tracing {
                        moves = timed(&mut prof, Phase::Observe, || {
                            world_moves(swarm, active.iter().copied().zip(computed.iter()))
                        });
                    }
                    // Sparse apply: O(activated ∪ moved), never the O(n)
                    // scatter into a full Option vector. Bit-identical to
                    // the dense partial apply (the equivalence proptests and
                    // the trace replay oracle both pin this).
                    self.swarm.apply_sparse_threads_profiled(
                        &active,
                        computed,
                        self.config.threads,
                        prof.as_deref_mut(),
                    )
                }
            };
            (recorded_activation, activated, outcome)
        };
        let stats = RoundStats {
            round: self.round,
            merged: outcome.merged,
            moved: outcome.moved,
            population: self.swarm.len(),
            activated,
        };
        self.round += 1;
        self.metrics.record(stats);
        // Emit the record before the invariant checks: a round that ends
        // in disconnection or a stall is still part of the run, and
        // replay must observe exactly the rounds the recorded run
        // executed — including the failing one.
        if let Some(observer) = self.observer.as_mut() {
            let swarm = &self.swarm;
            timed(&mut prof, Phase::Observe, || {
                let record = RoundRecord {
                    round: stats.round,
                    activated: recorded_activation.expect("cloned when tracing"),
                    moves,
                    pending,
                    merged: stats.merged as u32,
                    population: swarm.len() as u32,
                    digest: swarm.position_digest(),
                };
                observer(&record);
            });
        }

        let invariants = timed(&mut prof, Phase::Invariants, || {
            let check = match self.config.connectivity {
                ConnectivityCheck::Never => false,
                ConnectivityCheck::Always => true,
                ConnectivityCheck::Every(k) => k != 0 && self.round.is_multiple_of(k),
            };
            if check && !is_connected(&self.swarm) {
                return Err(EngineError::Disconnected { round: stats.round });
            }
            if self.metrics.mergeless_streak() >= self.config.stall_limit
                && !self.swarm.is_gathered()
            {
                return Err(EngineError::Stalled {
                    round: stats.round,
                    streak: self.metrics.mergeless_streak(),
                });
            }
            Ok(())
        });

        // The profile goes out on failing rounds too — a round that
        // disconnected still cost its wall time — after all round work,
        // so the sink can never perturb the simulation.
        if let Some(mut p) = profile_buf {
            p.wall_ns = round_start.expect("set when profiling").elapsed().as_nanos() as u64;
            if let (Some(before), Some(after)) = (allocs_before, profile::allocation_count()) {
                p.allocs = Some(after.saturating_sub(before));
            }
            if let Some(sink) = self.profiler.as_mut() {
                sink(&p);
            }
        }
        invariants?;
        Ok(stats)
    }

    /// One ASYNC round (the [`Scheduler::Async`] extension of the round
    /// loop). The look-compute-move cycle is decoupled: the robots not
    /// mid-flight *look* against the start-of-round swarm and draw a
    /// seeded delay `d ∈ 0..=staleness`; `d = 0` commits this round,
    /// `d >= 1` parks the move in the swarm (handle-keyed). The commit
    /// set — parked moves falling due plus this round's delay-0 looks —
    /// goes through the sparse O(active) apply, so in-flight robots are
    /// stationary incumbents under the existing order-free merge rule
    /// and results stay bit-identical across thread counts. Returns the
    /// observer's activation record (the look set), the activation
    /// count, and the apply outcome.
    #[allow(clippy::too_many_arguments)]
    fn step_async(
        &mut self,
        seed: u64,
        staleness: u32,
        ctx: RoundCtx,
        radius: i32,
        tracing: bool,
        moves: &mut Vec<RobotMove>,
        pending: &mut Vec<PendingMove>,
        prof: &mut Option<&mut RoundProfile>,
    ) -> (Option<Activation>, usize, crate::swarm::ApplyOutcome) {
        let n = self.swarm.len();
        // The look set: every robot not mid-flight, in slot order.
        // Legitimately empty when everyone is in flight — such a round
        // is a true no-op unless parked moves fall due below.
        let look: Vec<usize> = timed(prof, Phase::Activate, || {
            (0..n).filter(|&i| !self.swarm.is_in_flight(i)).collect()
        });
        let activated = look.len();
        let recorded_activation = tracing.then(|| {
            if activated == n {
                Activation::All
            } else {
                Activation::Subset(look.clone())
            }
        });
        let swarm = &self.swarm;
        let controller = &self.controller;
        let computed: Vec<Action<C::State>> = timed(prof, Phase::Compute, || {
            parallel_map(look.len(), self.config.threads, |j| {
                let view = View::new(swarm, look[j], radius);
                controller.decide(&view, ctx)
            })
        });
        // Split this round's looks by their seeded delay, then merge the
        // delay-0 ones with the earlier looks falling due now. Both
        // lists are slot-sorted and disjoint (a due robot was in flight,
        // hence outside the look set), so a linear merge preserves the
        // sparse apply's sorted-activation contract.
        let (commit_slots, commit_actions) = timed(prof, Phase::Activate, || {
            let mut immediate: Vec<(usize, Action<C::State>)> = Vec::new();
            for (j, action) in computed.into_iter().enumerate() {
                let i = look[j];
                let d = async_delay(seed, staleness, ctx.round, self.swarm.handles()[i]);
                if d == 0 {
                    immediate.push((i, action));
                } else {
                    if tracing {
                        // Pending records keep the zero step: a robot
                        // that decided to stay is still in flight.
                        let step = self.swarm.orients()[i].apply(action.step);
                        pending.push(PendingMove {
                            robot: i as u32,
                            dx: step.x as i8,
                            dy: step.y as i8,
                            delay: d as u32,
                        });
                    }
                    self.swarm.park(i, ctx.round + d, action);
                }
            }
            let due = self.swarm.take_due(ctx.round);
            let mut slots = Vec::with_capacity(due.len() + immediate.len());
            let mut actions = Vec::with_capacity(due.len() + immediate.len());
            let mut due = due.into_iter().peekable();
            let mut immediate = immediate.into_iter().peekable();
            loop {
                let from_due = match (due.peek(), immediate.peek()) {
                    (Some(d), Some(m)) => d.0 < m.0,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let (slot, action) =
                    if from_due { due.next() } else { immediate.next() }.expect("peeked Some");
                slots.push(slot);
                actions.push(action);
            }
            (slots, actions)
        });
        if tracing {
            *moves = timed(prof, Phase::Observe, || {
                world_moves(&self.swarm, commit_slots.iter().copied().zip(commit_actions.iter()))
            });
        }
        let outcome = self.swarm.apply_sparse_threads_profiled(
            &commit_slots,
            commit_actions,
            self.config.threads,
            prof.as_deref_mut(),
        );
        (recorded_activation, activated, outcome)
    }

    /// Run until gathered or until `max_rounds` have elapsed.
    pub fn run_until_gathered(&mut self, max_rounds: u64) -> Result<RunOutcome, EngineError> {
        let initial_robots = self.swarm.len();
        while !self.swarm.is_gathered() {
            if self.round >= max_rounds {
                return Err(EngineError::RoundBudgetExhausted { round: self.round });
            }
            self.step()?;
        }
        Ok(RunOutcome {
            rounds: self.round,
            initial_robots,
            final_robots: self.swarm.len(),
            metrics: self.metrics.clone(),
        })
    }
}

/// World-frame moves for an observed round: each `(index, action)` pair
/// whose step (re-expressed through the robot's orientation) is
/// non-zero, in index order.
fn world_moves<'a, S: RobotState>(
    swarm: &Swarm<S>,
    pairs: impl Iterator<Item = (usize, &'a Action<S>)>,
) -> Vec<RobotMove> {
    pairs
        .filter_map(|(i, action)| {
            let step = swarm.orients()[i].apply(action.step);
            (step != V2::ZERO).then_some(RobotMove {
                robot: i as u32,
                dx: step.x as i8,
                dy: step.y as i8,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{Point, V2};

    /// Robots that always step toward the origin-ward neighbour — not a
    /// valid distributed strategy (uses the simulator frame), but enough
    /// to exercise the engine loop: a horizontal line collapses east.
    struct MarchEast;
    impl Controller for MarchEast {
        type State = ();
        fn radius(&self) -> i32 {
            2
        }
        fn decide(&self, view: &View<'_, ()>, _ctx: RoundCtx) -> Action<()> {
            // March east unless nobody is there; pendant robots fold in.
            if view.occupied(V2::E) {
                Action { step: V2::E, state: () }
            } else {
                Action::stay(())
            }
        }
    }

    #[test]
    fn line_collapses() {
        let pts: Vec<Point> = (0..8).map(|x| Point::new(x, 0)).collect();
        let mut engine = Engine::from_positions(
            &pts,
            OrientationMode::Aligned,
            MarchEast,
            EngineConfig { connectivity: ConnectivityCheck::Always, ..Default::default() },
        );
        let out = engine.run_until_gathered(100).expect("gathers");
        assert_eq!(out.initial_robots, 8);
        // One merge per round; gathered once the span fits 2×2, with the
        // rightmost pair still alive.
        assert_eq!(out.rounds, 6);
        assert_eq!(out.final_robots, 2);
    }

    #[test]
    fn budget_exhaustion_reported() {
        struct Idle;
        impl Controller for Idle {
            type State = ();
            fn radius(&self) -> i32 {
                1
            }
            fn decide(&self, _v: &View<'_, ()>, _c: RoundCtx) -> Action<()> {
                Action::stay(())
            }
        }
        let pts: Vec<Point> = (0..5).map(|x| Point::new(x, 0)).collect();
        let mut engine =
            Engine::from_positions(&pts, OrientationMode::Aligned, Idle, Default::default());
        let err = engine.run_until_gathered(10).unwrap_err();
        assert_eq!(err, EngineError::RoundBudgetExhausted { round: 10 });
    }

    #[test]
    fn stall_detector_fires() {
        struct Idle;
        impl Controller for Idle {
            type State = ();
            fn radius(&self) -> i32 {
                1
            }
            fn decide(&self, _v: &View<'_, ()>, _c: RoundCtx) -> Action<()> {
                Action::stay(())
            }
        }
        let pts: Vec<Point> = (0..5).map(|x| Point::new(x, 0)).collect();
        let mut engine = Engine::from_positions(
            &pts,
            OrientationMode::Aligned,
            Idle,
            EngineConfig { stall_limit: 3, ..Default::default() },
        );
        let err = engine.run_until_gathered(100).unwrap_err();
        assert!(matches!(err, EngineError::Stalled { streak: 3, .. }), "{err:?}");
    }

    #[test]
    fn ssync_and_round_robin_step_partially_and_reproducibly() {
        // MarchEast is only safe under FSYNC (partial activation tears
        // holes in the line — exactly the effect the scheduler sweep
        // studies), so probe a fixed number of unchecked rounds and
        // demand bit-identical evolution across runs.
        let pts: Vec<Point> = (0..8).map(|x| Point::new(x, 0)).collect();
        for scheduler in [Scheduler::Ssync { seed: 11, p: 50 }, Scheduler::RoundRobin { k: 3 }] {
            let run = || {
                let mut engine = Engine::from_positions(
                    &pts,
                    OrientationMode::Aligned,
                    MarchEast,
                    EngineConfig {
                        connectivity: ConnectivityCheck::Never,
                        scheduler,
                        ..Default::default()
                    },
                );
                for _ in 0..50 {
                    engine.step().expect("unchecked steps cannot fail");
                }
                let positions: Vec<Point> = engine.swarm.positions().to_vec();
                (positions, engine.metrics().total_activations, engine.metrics().total_merged)
            };
            let (a, b) = (run(), run());
            assert_eq!(a, b, "{scheduler:?} evolution not reproducible");
            // Partial activation: strictly less work than 50 FSYNC
            // rounds of the initial population, yet some robots met.
            assert!(a.1 < 50 * 8, "{scheduler:?} activated everyone every round");
            assert!(a.2 > 0, "{scheduler:?} never merged anyone");
        }
    }

    #[test]
    fn fsync_scheduler_is_bit_identical_to_default_across_threads() {
        let pts: Vec<Point> = (0..8).map(|x| Point::new(x, 0)).collect();
        let run = |threads: usize, scheduler: Scheduler| {
            let mut engine = Engine::from_positions(
                &pts,
                OrientationMode::Aligned,
                MarchEast,
                EngineConfig { threads, scheduler, ..Default::default() },
            );
            let out = engine.run_until_gathered(100).expect("gathers");
            (out.rounds, out.final_robots, out.metrics.total_merged)
        };
        let reference = run(1, Scheduler::Fsync);
        assert_eq!(reference.0, 6, "the pre-scheduler engine took 6 rounds on this line");
        for threads in [2usize, 4, 8] {
            assert_eq!(run(threads, Scheduler::Fsync), reference, "threads={threads}");
        }
    }

    #[test]
    fn observer_records_every_round_bit_identically() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let pts: Vec<Point> = (0..8).map(|x| Point::new(x, 0)).collect();
        let run = |threads: usize, scheduler: Scheduler| {
            let rounds: Rc<RefCell<Vec<RoundRecord>>> = Rc::default();
            let mut engine = Engine::from_positions(
                &pts,
                OrientationMode::Scrambled(5),
                MarchEast,
                EngineConfig {
                    threads,
                    scheduler,
                    connectivity: ConnectivityCheck::Never,
                    ..Default::default()
                },
            );
            let sink = rounds.clone();
            engine.set_observer(Box::new(move |rec| sink.borrow_mut().push(rec.clone())));
            for _ in 0..20 {
                engine.step().expect("unchecked steps cannot fail");
            }
            assert_eq!(engine.swarm.position_digest(), rounds.borrow().last().unwrap().digest);
            drop(engine);
            Rc::try_unwrap(rounds).map(RefCell::into_inner).expect("engine dropped its clone")
        };
        for scheduler in [Scheduler::Fsync, Scheduler::Ssync { seed: 9, p: 60 }] {
            let reference = run(1, scheduler);
            assert_eq!(reference.len(), 20);
            for (i, rec) in reference.iter().enumerate() {
                assert_eq!(rec.round, i as u64);
                assert!(rec.moves.windows(2).all(|w| w[0].robot < w[1].robot), "unsorted moves");
                assert!(rec.moves.iter().all(|m| (m.dx, m.dy) != (0, 0)), "zero-step recorded");
            }
            assert_eq!(run(4, scheduler), reference, "{scheduler:?}: records depend on threads");
        }
    }

    #[test]
    fn profiler_never_perturbs_results_and_attributes_round_time() {
        use crate::profile::{ProfileTotals, RoundProfile};
        use std::cell::RefCell;
        use std::rc::Rc;

        let pts: Vec<Point> = (0..2000).map(|x| Point::new(x, 0)).collect();
        let run = |threads: usize, profile: bool| {
            let profiles: Rc<RefCell<Vec<RoundProfile>>> = Rc::default();
            let mut engine = Engine::from_positions(
                &pts,
                OrientationMode::Aligned,
                MarchEast,
                EngineConfig {
                    threads,
                    connectivity: ConnectivityCheck::Never,
                    ..Default::default()
                },
            );
            if profile {
                let sink = profiles.clone();
                engine.set_profiler(Box::new(move |p| sink.borrow_mut().push(p.clone())));
            }
            for _ in 0..10 {
                engine.step().expect("unchecked steps cannot fail");
            }
            let digest = engine.swarm.position_digest();
            drop(engine);
            let profiles =
                Rc::try_unwrap(profiles).map(RefCell::into_inner).expect("engine dropped");
            (digest, engine_len_from(&profiles), profiles)
        };
        fn engine_len_from(profiles: &[RoundProfile]) -> usize {
            profiles.len()
        }
        for threads in [1usize, 4] {
            let (plain_digest, _, profiles_off) = run(threads, false);
            let (profiled_digest, rounds, profiles) = run(threads, true);
            assert!(profiles_off.is_empty(), "profile emitted without a sink");
            assert_eq!(plain_digest, profiled_digest, "profiling perturbed the run");
            assert_eq!(rounds, 10, "one profile per round");
            let mut totals = ProfileTotals::default();
            for (i, p) in profiles.iter().enumerate() {
                assert_eq!(p.round, i as u64);
                assert!(p.phases_total_ns() <= p.wall_ns, "phases exceed wall time");
                assert!(p.shard_min_ns <= p.shard_max_ns);
                totals.add(p);
            }
            // The named phases must explain the overwhelming share of
            // the round wall time (acceptance: ≥90%).
            assert!(
                totals.coverage() >= 0.9,
                "threads={threads}: phase coverage {:.1}% < 90%\n{}",
                totals.coverage() * 100.0,
                totals.render(),
            );
            // This swarm is above PARALLEL_THRESHOLD, so the parallel
            // path ran and clocked its merge shards.
            if threads > 1 {
                assert!(
                    profiles.iter().any(|p| p.shard_max_ns > 0),
                    "threads={threads}: sharded section never clocked"
                );
            }
            assert_eq!(
                profiles.iter().all(|p| p.allocs.is_some()),
                cfg!(feature = "count-alloc"),
                "alloc counting must track the count-alloc feature"
            );
        }
    }

    #[test]
    fn profile_emitted_on_failing_rounds_too() {
        struct Idle;
        impl Controller for Idle {
            type State = ();
            fn radius(&self) -> i32 {
                1
            }
            fn decide(&self, _v: &View<'_, ()>, _c: RoundCtx) -> Action<()> {
                Action::stay(())
            }
        }
        use std::cell::RefCell;
        use std::rc::Rc;
        let pts: Vec<Point> = (0..5).map(|x| Point::new(x, 0)).collect();
        let mut engine = Engine::from_positions(
            &pts,
            OrientationMode::Aligned,
            Idle,
            EngineConfig { stall_limit: 1, ..Default::default() },
        );
        let profiles: Rc<RefCell<Vec<crate::profile::RoundProfile>>> = Rc::default();
        let sink = profiles.clone();
        engine.set_profiler(Box::new(move |p| sink.borrow_mut().push(p.clone())));
        let err = engine.step().unwrap_err();
        assert!(matches!(err, EngineError::Stalled { .. }), "{err:?}");
        assert_eq!(profiles.borrow().len(), 1, "failing round must still emit its profile");
    }

    #[test]
    fn observer_sees_world_frame_moves_and_merges() {
        use std::cell::RefCell;
        use std::rc::Rc;

        // Two aligned robots; MarchEast moves robot 0 east onto robot 1.
        let pts = [Point::new(0, 0), Point::new(1, 0)];
        let rounds: Rc<RefCell<Vec<RoundRecord>>> = Rc::default();
        let mut engine =
            Engine::from_positions(&pts, OrientationMode::Aligned, MarchEast, Default::default());
        let sink = rounds.clone();
        engine.set_observer(Box::new(move |rec| sink.borrow_mut().push(rec.clone())));
        engine.step().unwrap();
        let recs = rounds.borrow();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].activated, Activation::All);
        assert_eq!(recs[0].moves, vec![RobotMove { robot: 0, dx: 1, dy: 0 }]);
        assert_eq!(recs[0].merged, 1);
        assert_eq!(recs[0].population, 1);
    }

    /// Collect the full observer record stream of an ASYNC run over a
    /// fixed number of unchecked rounds.
    fn async_record_stream(
        pts: &[Point],
        threads: usize,
        scheduler: Scheduler,
        rounds: usize,
    ) -> (Vec<RoundRecord>, u64) {
        use std::cell::RefCell;
        use std::rc::Rc;
        let records: Rc<RefCell<Vec<RoundRecord>>> = Rc::default();
        let mut engine = Engine::from_positions(
            pts,
            OrientationMode::Scrambled(5),
            MarchEast,
            EngineConfig {
                threads,
                scheduler,
                connectivity: ConnectivityCheck::Never,
                ..Default::default()
            },
        );
        let sink = records.clone();
        engine.set_observer(Box::new(move |rec| sink.borrow_mut().push(rec.clone())));
        for _ in 0..rounds {
            engine.step().expect("unchecked steps cannot fail");
        }
        let digest = engine.swarm.position_digest();
        drop(engine);
        (Rc::try_unwrap(records).map(RefCell::into_inner).expect("engine dropped"), digest)
    }

    #[test]
    fn async_is_bit_identical_across_threads() {
        let pts: Vec<Point> = (0..64).map(|x| Point::new(x, 0)).collect();
        let scheduler = Scheduler::Async { seed: 17, staleness: 3 };
        let reference = async_record_stream(&pts, 1, scheduler, 40);
        assert_eq!(reference.0.len(), 40);
        for threads in [2usize, 3, 8] {
            assert_eq!(
                async_record_stream(&pts, threads, scheduler, 40),
                reference,
                "threads={threads}: ASYNC evolution depends on thread count"
            );
        }
    }

    #[test]
    fn async_staleness_zero_degenerates_to_fsync() {
        // With staleness 0 every delay draw is 0, so the ASYNC path is
        // the FSYNC round loop routed through the in-flight machinery —
        // the record streams must be indistinguishable.
        let pts: Vec<Point> = (0..16).map(|x| Point::new(x, 0)).collect();
        let fsync = async_record_stream(&pts, 1, Scheduler::Fsync, 15);
        let degenerate =
            async_record_stream(&pts, 1, Scheduler::Async { seed: 99, staleness: 0 }, 15);
        assert_eq!(degenerate, fsync);
    }

    #[test]
    fn async_decouples_look_from_move() {
        let staleness = 3u32;
        let pts: Vec<Point> = (0..32).map(|x| Point::new(x, 0)).collect();
        let (records, final_digest) =
            async_record_stream(&pts, 1, Scheduler::Async { seed: 7, staleness }, 30);
        assert_eq!(records.last().unwrap().digest, final_digest);
        let mut saw_pending = false;
        let mut saw_stale_commit = false;
        for rec in &records {
            let looked: Vec<u32> = match &rec.activated {
                Activation::All => (0..rec.population + rec.merged).collect(),
                Activation::Subset(s) => s.iter().map(|&i| i as u32).collect(),
            };
            // Parked moves come only from robots that looked this round,
            // with an honest delay; committed moves from robots *not* in
            // the look set are the stale moves falling due.
            for p in &rec.pending {
                saw_pending = true;
                assert!(looked.binary_search(&p.robot).is_ok(), "parked without looking");
                assert!((1..=staleness).contains(&p.delay), "delay {} out of range", p.delay);
            }
            for m in &rec.moves {
                if looked.binary_search(&m.robot).is_err() {
                    saw_stale_commit = true;
                }
                assert!((m.dx, m.dy) != (0, 0), "zero-step committed move recorded");
            }
            assert!(rec.moves.windows(2).all(|w| w[0].robot < w[1].robot), "unsorted moves");
            assert!(rec.pending.windows(2).all(|w| w[0].robot < w[1].robot), "unsorted pending");
        }
        assert!(saw_pending, "staleness 3 never parked a move in 30 rounds");
        assert!(saw_stale_commit, "no move ever committed after its look round");
    }

    #[test]
    fn disconnection_detected() {
        // A strategy that tears the line apart: everyone steps away from
        // their western neighbour.
        struct Flee;
        impl Controller for Flee {
            type State = ();
            fn radius(&self) -> i32 {
                2
            }
            fn decide(&self, view: &View<'_, ()>, _c: RoundCtx) -> Action<()> {
                if view.occupied(V2::W) && view.empty(V2::E) {
                    Action { step: V2::E, state: () }
                } else {
                    Action::stay(())
                }
            }
        }
        let pts = [Point::new(0, 0), Point::new(1, 0), Point::new(3, 0), Point::new(4, 0)];
        // Start disconnected already? No: use a connected pair far apart.
        let pts = [pts[0], pts[1]];
        let mut engine = Engine::from_positions(
            &pts,
            OrientationMode::Aligned,
            Flee,
            EngineConfig { connectivity: ConnectivityCheck::Always, ..Default::default() },
        );
        let err = engine.step().unwrap_err();
        assert!(matches!(err, EngineError::Disconnected { .. }));
    }
}
