//! A vendored FxHash-style hasher for integer-keyed maps.
//!
//! The perf-book guidance for this domain is to avoid SipHash for hot
//! integer keys; rather than pull in a dependency for ~40 lines we vendor
//! the classic multiply-rotate mix used by rustc's `FxHasher`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Fast, non-DoS-resistant hasher for grid coordinates and robot ids.
#[derive(Default, Clone, Debug)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.add_to_hash(i as u32 as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<Point, usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(Point::new(i, -i), i as usize);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000 {
            assert_eq!(m.get(&Point::new(i, -i)), Some(&(i as usize)));
        }
    }

    #[test]
    fn distinct_points_rarely_collide() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let mut hashes = FxHashSet::default();
        for x in -50..50 {
            for y in -50..50 {
                hashes.insert(bh.hash_one(Point::new(x, y)));
            }
        }
        // 10_000 points: demand at least 99.9% distinct 64-bit hashes.
        assert!(hashes.len() > 9990, "got {}", hashes.len());
    }
}
