//! Swarm connectivity checks (4-neighbourhood), used both as the
//! simulator's safety oracle and by the analysis tooling.

use crate::geom::Point;
use crate::swarm::{RobotState, Swarm};

/// Is the swarm connected under the paper's definition (horizontal or
/// vertical adjacency)? O(n) BFS over the tiled occupancy index (each
/// neighbour probe is one tile-map lookup; the check runs every k-th
/// round at most, so it stays off the per-round hot path).
pub fn is_connected<S: RobotState>(swarm: &Swarm<S>) -> bool {
    component_count_bounded(swarm, 2) == 1
}

/// Number of 4-connected components.
pub fn component_count<S: RobotState>(swarm: &Swarm<S>) -> usize {
    component_count_bounded(swarm, usize::MAX)
}

/// Count components, stopping early once `limit` have been seen.
fn component_count_bounded<S: RobotState>(swarm: &Swarm<S>, limit: usize) -> usize {
    let n = swarm.len();
    if n == 0 {
        return 0;
    }
    let mut visited = vec![false; n];
    let mut stack: Vec<usize> = Vec::with_capacity(64);
    let mut components = 0;
    for start in 0..n {
        if visited[start] {
            continue;
        }
        components += 1;
        if components >= limit {
            return components;
        }
        visited[start] = true;
        stack.push(start);
        while let Some(i) = stack.pop() {
            let p = swarm.positions()[i];
            for q in p.neighbors4() {
                if let Some(j) = swarm.robot_at(q) {
                    if !visited[j] {
                        visited[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
    }
    components
}

/// Check whether a *set of points* is 4-connected — used by workload
/// generators before a swarm object exists.
pub fn points_connected(points: &[Point]) -> bool {
    if points.is_empty() {
        return false;
    }
    let set: crate::fxhash::FxHashSet<Point> = points.iter().copied().collect();
    let mut visited: crate::fxhash::FxHashSet<Point> = Default::default();
    let mut stack = vec![points[0]];
    visited.insert(points[0]);
    while let Some(p) = stack.pop() {
        for q in p.neighbors4() {
            if set.contains(&q) && visited.insert(q) {
                stack.push(q);
            }
        }
    }
    visited.len() == set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swarm::OrientationMode;

    #[test]
    fn line_is_connected() {
        let pts: Vec<Point> = (0..10).map(|x| Point::new(x, 0)).collect();
        let s: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        assert!(is_connected(&s));
        assert_eq!(component_count(&s), 1);
    }

    #[test]
    fn diagonal_only_is_disconnected() {
        // Diagonal adjacency does NOT count for connectivity in the
        // paper's model, only for movement.
        let s: Swarm<()> =
            Swarm::new(&[Point::new(0, 0), Point::new(1, 1)], OrientationMode::Aligned);
        assert!(!is_connected(&s));
        assert_eq!(component_count(&s), 2);
    }

    #[test]
    fn three_islands() {
        let s: Swarm<()> = Swarm::new(
            &[Point::new(0, 0), Point::new(5, 0), Point::new(10, 0)],
            OrientationMode::Aligned,
        );
        assert_eq!(component_count(&s), 3);
    }

    #[test]
    fn points_connected_helper() {
        assert!(points_connected(&[Point::new(0, 0), Point::new(0, 1)]));
        assert!(!points_connected(&[Point::new(0, 0), Point::new(2, 0)]));
        assert!(!points_connected(&[]));
    }
}
