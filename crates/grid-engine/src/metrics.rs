//! Round-level instrumentation of a simulation run.

/// What happened in one round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundStats {
    pub round: u64,
    /// Robots removed by merges this round.
    pub merged: usize,
    /// Robots that changed position this round.
    pub moved: usize,
    /// Robots alive after the round.
    pub population: usize,
    /// Robots the scheduler activated this round (== population before
    /// the round under FSYNC; a strict subset under SSYNC/round-robin).
    pub activated: usize,
}

/// Aggregated metrics for a run, optionally with full per-round history.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    pub rounds: u64,
    pub total_merged: usize,
    pub total_moves: usize,
    /// Total robot activations across the run — the honest *work*
    /// measure when comparing schedulers: an SSYNC round does less work
    /// than an FSYNC round, so rounds alone undersell FSYNC.
    pub total_activations: u64,
    /// Longest stretch of consecutive rounds without a single merge —
    /// the quantity Lemma 1 bounds by O(L · n) overall and the stall
    /// detector watches.
    pub longest_mergeless_streak: u64,
    current_mergeless_streak: u64,
    pub history: Option<Vec<RoundStats>>,
}

impl Metrics {
    pub fn new(keep_history: bool) -> Self {
        Metrics { history: keep_history.then(Vec::new), ..Metrics::default() }
    }

    pub fn record(&mut self, stats: RoundStats) {
        self.rounds += 1;
        self.total_merged += stats.merged;
        self.total_moves += stats.moved;
        self.total_activations += stats.activated as u64;
        if stats.merged == 0 {
            self.current_mergeless_streak += 1;
            self.longest_mergeless_streak =
                self.longest_mergeless_streak.max(self.current_mergeless_streak);
        } else {
            self.current_mergeless_streak = 0;
        }
        if let Some(h) = &mut self.history {
            h.push(stats);
        }
    }

    /// Rounds since the last merge (the live stall counter).
    pub fn mergeless_streak(&self) -> u64 {
        self.current_mergeless_streak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(round: u64, merged: usize) -> RoundStats {
        RoundStats { round, merged, moved: 0, population: 10, activated: 10 }
    }

    #[test]
    fn aggregates() {
        let mut m = Metrics::new(true);
        m.record(s(0, 0));
        m.record(s(1, 0));
        m.record(s(2, 3));
        m.record(s(3, 0));
        assert_eq!(m.rounds, 4);
        assert_eq!(m.total_merged, 3);
        assert_eq!(m.total_activations, 40);
        assert_eq!(m.longest_mergeless_streak, 2);
        assert_eq!(m.mergeless_streak(), 1);
        assert_eq!(m.history.as_ref().unwrap().len(), 4);
    }

    #[test]
    fn history_opt_out() {
        let mut m = Metrics::new(false);
        m.record(s(0, 1));
        assert!(m.history.is_none());
    }
}
