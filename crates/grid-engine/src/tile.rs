//! Tiled occupancy index: the swarm's spatial index, sharded into dense
//! 64×64 tiles.
//!
//! The dense [`OccupancyGrid`](crate::grid::OccupancyGrid) allocates the
//! swarm's full bounding rectangle, which is O(area): a sparse
//! two-cluster swarm 10⁵ cells apart would demand ~10¹⁰ cells before the
//! first round runs, and every escape past the rectangle's edge triggers
//! a stop-the-world full copy. This index instead stores fixed 64×64
//! dense tiles (`Box<[u32; 4096]>`) in hash maps keyed by tile
//! coordinate: memory is O(occupied tiles), there is no global
//! reallocation, and `bounds()` derives from tile-key extremes plus a
//! scan of the boundary tiles only — no O(n) rescan over robots.
//!
//! Two access paths keep probes cheap:
//!
//! * [`TileIndex::window`] pins the ≤3×3 tile block around a viewing
//!   robot, so the compute step's O(radius²) probes cost an array read
//!   plus two compares each instead of a hash lookup — this is what
//!   keeps the tiled index competitive with the dense grid on the hot
//!   look path.
//! * The tile maps are split into [`NUM_SHARDS`] independent shards
//!   keyed by tile coordinate (a cell belongs to exactly one tile, a
//!   tile to exactly one shard), so the round-apply can resolve merges
//!   and rebuild occupancy on scoped worker threads with exclusive,
//!   lock-free access to disjoint shards (`shards_mut`).

use crate::fxhash::FxHashMap;
use crate::geom::{Bounds, Point};

/// Sentinel id for an empty cell (shared with the dense reference grid).
pub const EMPTY: u32 = u32::MAX;

/// log2 of the tile edge length.
pub const TILE_BITS: i32 = 6;
/// Tile edge length in cells.
pub const TILE_SIZE: i32 = 1 << TILE_BITS;
/// Cells per tile.
pub const TILE_CELLS: usize = (TILE_SIZE * TILE_SIZE) as usize;
/// Number of independent tile-map shards (a power of two; shard choice
/// is a cheap bit-mix of the tile coordinate).
pub const NUM_SHARDS: usize = 64;

/// Coordinate of a tile: the cell coordinates arithmetically shifted by
/// [`TILE_BITS`] (floor division, so negative cells tile correctly).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TileKey {
    pub x: i32,
    pub y: i32,
}

impl TileKey {
    #[inline]
    pub fn of(p: Point) -> TileKey {
        TileKey { x: p.x >> TILE_BITS, y: p.y >> TILE_BITS }
    }

    /// Which shard owns this tile. `& 7` keeps the low three bits of
    /// each axis (well-defined for negatives in two's complement), so
    /// neighbouring tiles land in different shards and a spatially
    /// clustered swarm still spreads across workers.
    #[inline]
    pub fn shard(self) -> usize {
        ((self.x & 7) | ((self.y & 7) << 3)) as usize
    }
}

/// Shard of a world-frame cell: the shard of the tile containing it.
#[inline]
pub fn shard_of(p: Point) -> usize {
    TileKey::of(p).shard()
}

/// One dense 64×64 tile plus its live-cell count (so empty tiles can be
/// dropped, keeping both memory and the tile-key extremes honest).
impl std::fmt::Debug for Tile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tile").field("occupied", &self.occupied).finish_non_exhaustive()
    }
}

#[derive(Clone)]
pub struct Tile {
    cells: Box<[u32; TILE_CELLS]>,
    occupied: u32,
}

impl Tile {
    fn new() -> Tile {
        Tile { cells: Box::new([EMPTY; TILE_CELLS]), occupied: 0 }
    }

    /// Index of a world-frame cell within its tile.
    #[inline]
    fn idx(p: Point) -> usize {
        (((p.y & (TILE_SIZE - 1)) as usize) << TILE_BITS) | ((p.x & (TILE_SIZE - 1)) as usize)
    }

    #[inline]
    pub fn get(&self, p: Point) -> Option<u32> {
        let v = self.cells[Tile::idx(p)];
        (v != EMPTY).then_some(v)
    }

    /// Exact bounds of the occupied cells, in tile-local offsets.
    /// O(TILE_CELLS); only called for the boundary tiles of a bounds
    /// query, never per robot.
    fn local_extents(&self) -> Option<(i32, i32, i32, i32)> {
        let mut ext: Option<(i32, i32, i32, i32)> = None;
        for (i, &v) in self.cells.iter().enumerate() {
            if v == EMPTY {
                continue;
            }
            let x = (i & (TILE_SIZE as usize - 1)) as i32;
            let y = (i >> TILE_BITS) as i32;
            ext = Some(match ext {
                None => (x, x, y, y),
                Some((x0, x1, y0, y1)) => (x0.min(x), x1.max(x), y0.min(y), y1.max(y)),
            });
        }
        ext
    }
}

/// One independently-mutable shard of the tile map.
#[derive(Clone, Default, Debug)]
pub struct Shard {
    tiles: FxHashMap<TileKey, Tile>,
}

impl Shard {
    /// Mark `p` occupied by `id`, creating its tile on demand. Returns
    /// the id previously stored at `p`.
    ///
    /// The caller must only hand this shard cells it owns
    /// (`shard_of(p)` must equal this shard's index) — the sharded
    /// round-apply guarantees that by grouping cells per shard.
    pub fn set(&mut self, p: Point, id: u32) -> Option<u32> {
        let tile = self.tiles.entry(TileKey::of(p)).or_insert_with(Tile::new);
        let cell = &mut tile.cells[Tile::idx(p)];
        let old = std::mem::replace(cell, id);
        if old == EMPTY {
            tile.occupied += 1;
            None
        } else {
            Some(old)
        }
    }

    /// Mark `p` empty, dropping its tile when it empties out. Returns
    /// the id previously stored at `p`.
    pub fn clear(&mut self, p: Point) -> Option<u32> {
        let key = TileKey::of(p);
        let tile = self.tiles.get_mut(&key)?;
        let cell = &mut tile.cells[Tile::idx(p)];
        let old = std::mem::replace(cell, EMPTY);
        if old == EMPTY {
            return None;
        }
        tile.occupied -= 1;
        if tile.occupied == 0 {
            self.tiles.remove(&key);
        }
        Some(old)
    }

    #[inline]
    fn get(&self, p: Point) -> Option<u32> {
        self.tiles.get(&TileKey::of(p))?.get(p)
    }
}

/// The tiled occupancy index. Memory is proportional to *occupied
/// tiles*, never to the bounding rectangle.
#[derive(Clone, Debug)]
pub struct TileIndex {
    shards: Vec<Shard>,
}

impl Default for TileIndex {
    fn default() -> Self {
        TileIndex::new()
    }
}

impl TileIndex {
    pub fn new() -> TileIndex {
        TileIndex { shards: (0..NUM_SHARDS).map(|_| Shard::default()).collect() }
    }

    /// Robot id occupying `p`, if any. Cells in untouched tiles are by
    /// definition empty — there is no "outside the backing store".
    #[inline]
    pub fn get(&self, p: Point) -> Option<u32> {
        self.shards[shard_of(p)].get(p)
    }

    #[inline]
    pub fn occupied(&self, p: Point) -> bool {
        self.get(p).is_some()
    }

    /// Mark `p` as occupied by robot `id`. Returns the id previously
    /// stored at `p`.
    pub fn set(&mut self, p: Point, id: u32) -> Option<u32> {
        self.shards[shard_of(p)].set(p, id)
    }

    /// Mark `p` as empty. Returns the id previously stored there.
    pub fn clear(&mut self, p: Point) -> Option<u32> {
        self.shards[shard_of(p)].clear(p)
    }

    /// The shard slice, for the parallel round-apply: workers take
    /// exclusive ownership of disjoint shards
    /// ([`crate::parallel::for_each_shard_mut`]) and may only touch
    /// cells whose [`shard_of`] matches their shard index.
    pub(crate) fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }

    /// Live (non-empty) tiles currently allocated.
    pub fn tile_count(&self) -> usize {
        self.shards.iter().map(|s| s.tiles.len()).sum()
    }

    /// Live tiles per shard (diagnostic): how evenly the occupied tiles
    /// spread over the [`NUM_SHARDS`] round-apply shards. A skewed
    /// distribution is the static cause behind a large min/max shard gap
    /// in the round profiler's parallel-section timings.
    pub fn shard_tile_counts(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.tiles.len()).collect()
    }

    /// Cells currently backed by allocated tiles (diagnostic): the
    /// memory-proportional analogue of the dense grid's
    /// `capacity_cells`, O(occupied tiles) rather than O(bounding box).
    pub fn capacity_cells(&self) -> usize {
        self.tile_count() * TILE_CELLS
    }

    /// Exact bounds of the occupied cells, derived from tile-key
    /// extremes: O(live tiles) to find the extreme tile rows/columns,
    /// plus a cell scan of those boundary tiles only. Never rescans
    /// robots — cost is independent of the population.
    pub fn bounds(&self) -> Option<Bounds> {
        let mut keys: Option<(i32, i32, i32, i32)> = None;
        for shard in &self.shards {
            // audit: allow(unordered-iter) min/max fold over tile keys is
            // commutative — the result is independent of visit order
            for key in shard.tiles.keys() {
                keys = Some(match keys {
                    None => (key.x, key.x, key.y, key.y),
                    Some((x0, x1, y0, y1)) => {
                        (x0.min(key.x), x1.max(key.x), y0.min(key.y), y1.max(key.y))
                    }
                });
            }
        }
        let (kx0, kx1, ky0, ky1) = keys?;
        // Any tile with key.x > kx0 only holds cells at x ≥ (kx0+1)·64,
        // so the global min x lives in the kx0 tile column; same for the
        // other three extremes.
        let (mut x0, mut x1, mut y0, mut y1) = (i32::MAX, i32::MIN, i32::MAX, i32::MIN);
        for shard in &self.shards {
            // audit: allow(unordered-iter) min/max fold over boundary
            // tiles — commutative, order cannot leak into the bounds
            for (key, tile) in &shard.tiles {
                if key.x != kx0 && key.x != kx1 && key.y != ky0 && key.y != ky1 {
                    continue;
                }
                let (lx0, lx1, ly0, ly1) =
                    tile.local_extents().expect("live tiles hold at least one cell");
                if key.x == kx0 {
                    x0 = x0.min((kx0 << TILE_BITS) + lx0);
                }
                if key.x == kx1 {
                    x1 = x1.max((kx1 << TILE_BITS) + lx1);
                }
                if key.y == ky0 {
                    y0 = y0.min((ky0 << TILE_BITS) + ly0);
                }
                if key.y == ky1 {
                    y1 = y1.max((ky1 << TILE_BITS) + ly1);
                }
            }
        }
        Some(Bounds { min: Point::new(x0, y0), max: Point::new(x1, y1) })
    }

    /// Pin the tile block covering `center ± radius` (L∞) for repeated
    /// probing — the *look*-step fast path. Falls back to per-probe map
    /// lookups when the block would exceed 3×3 tiles (radius > 64ish,
    /// which no shipped controller uses).
    pub fn window(&self, center: Point, radius: i32) -> TileWindow<'_> {
        let radius = radius.max(0);
        let kx0 = (center.x - radius) >> TILE_BITS;
        let kx1 = (center.x + radius) >> TILE_BITS;
        let ky0 = (center.y - radius) >> TILE_BITS;
        let ky1 = (center.y + radius) >> TILE_BITS;
        let (w, h) = (kx1 - kx0 + 1, ky1 - ky0 + 1);
        let mut win = TileWindow { index: self, kx0, ky0, w: 0, h: 0, tiles: [None; WINDOW_TILES] };
        if w <= WINDOW_EDGE as i32 && h <= WINDOW_EDGE as i32 {
            win.w = w;
            win.h = h;
            for dy in 0..h {
                for dx in 0..w {
                    let key = TileKey { x: kx0 + dx, y: ky0 + dy };
                    win.tiles[(dy * w + dx) as usize] = self.shards[key.shard()].tiles.get(&key);
                }
            }
        }
        win
    }
}

/// Per-shard active lists: the sparse round path's working sets, grouped
/// by the shard that owns each robot's cell so shard-scoped phases
/// (merge detection, occupancy updates) touch only the shards an active
/// robot actually lives in.
///
/// Allocation-flat by design: [`ShardLists::clear`] empties only the
/// lists touched since the last clear (tracked in a 64-bit mask — one
/// bit per shard, which is why [`NUM_SHARDS`] must stay ≤ 64) and every
/// list retains its capacity, so steady-state rounds do no heap work
/// here. Iteration over touched shards is in ascending shard order and
/// each list preserves push order, so any fold over a `ShardLists` is
/// deterministic.
#[derive(Clone, Debug)]
pub struct ShardLists {
    lists: Vec<Vec<u32>>,
    touched: u64,
}

const _: () = assert!(NUM_SHARDS <= 64, "ShardLists tracks touched shards in a u64 mask");

impl Default for ShardLists {
    fn default() -> Self {
        ShardLists::new()
    }
}

impl ShardLists {
    pub fn new() -> ShardLists {
        ShardLists { lists: (0..NUM_SHARDS).map(|_| Vec::new()).collect(), touched: 0 }
    }

    /// Empty every touched list, retaining capacity. O(touched shards).
    pub fn clear(&mut self) {
        let mut mask = self.touched;
        while mask != 0 {
            let shard = mask.trailing_zeros() as usize;
            self.lists[shard].clear();
            mask &= mask - 1;
        }
        self.touched = 0;
    }

    #[inline]
    pub fn push(&mut self, shard: usize, v: u32) {
        self.lists[shard].push(v);
        self.touched |= 1 << shard;
    }

    #[inline]
    pub fn list(&self, shard: usize) -> &[u32] {
        &self.lists[shard]
    }

    /// Indices of the shards touched since the last clear, ascending.
    pub fn touched_shards(&self) -> impl Iterator<Item = usize> + '_ {
        let mut mask = self.touched;
        std::iter::from_fn(move || {
            if mask == 0 {
                return None;
            }
            let shard = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(shard)
        })
    }

    /// Total entries across all touched lists.
    pub fn len(&self) -> usize {
        self.touched_shards().map(|s| self.lists[s].len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.touched == 0
    }
}

const WINDOW_EDGE: usize = 3;
const WINDOW_TILES: usize = WINDOW_EDGE * WINDOW_EDGE;

/// A pinned ≤3×3 block of tile references around a viewing robot:
/// probes inside the block are an array read plus two compares; probes
/// outside (or any probe when the radius exceeded the block) fall back
/// to the index.
pub struct TileWindow<'a> {
    index: &'a TileIndex,
    kx0: i32,
    ky0: i32,
    w: i32,
    h: i32,
    tiles: [Option<&'a Tile>; WINDOW_TILES],
}

impl std::fmt::Debug for TileWindow<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TileWindow")
            .field("kx0", &self.kx0)
            .field("ky0", &self.ky0)
            .field("w", &self.w)
            .field("h", &self.h)
            .finish_non_exhaustive()
    }
}

impl TileWindow<'_> {
    #[inline]
    pub fn get(&self, p: Point) -> Option<u32> {
        let dx = (p.x >> TILE_BITS) - self.kx0;
        let dy = (p.y >> TILE_BITS) - self.ky0;
        if dx >= 0 && dx < self.w && dy >= 0 && dy < self.h {
            self.tiles[(dy * self.w + dx) as usize].and_then(|t| t.get(p))
        } else {
            self.index.get(p)
        }
    }

    #[inline]
    pub fn occupied(&self, p: Point) -> bool {
        self.get(p).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_across_tile_borders() {
        let mut idx = TileIndex::new();
        // Cells straddling the origin land in four different tiles.
        for (i, p) in [Point::new(0, 0), Point::new(-1, 0), Point::new(0, -1), Point::new(-1, -1)]
            .into_iter()
            .enumerate()
        {
            assert_eq!(idx.get(p), None);
            assert_eq!(idx.set(p, i as u32), None);
            assert_eq!(idx.get(p), Some(i as u32));
        }
        assert_eq!(idx.tile_count(), 4);
        assert_eq!(idx.set(Point::new(0, 0), 9), Some(0), "overwrite reports the old id");
        assert_eq!(idx.clear(Point::new(0, 0)), Some(9));
        assert_eq!(idx.get(Point::new(0, 0)), None);
        assert_eq!(idx.clear(Point::new(0, 0)), None);
        assert_eq!(idx.tile_count(), 3, "emptied tile is dropped");
    }

    #[test]
    fn far_flung_cells_cost_tiles_not_area() {
        let mut idx = TileIndex::new();
        idx.set(Point::new(0, 0), 0);
        idx.set(Point::new(1_000_000, -2_000_000), 1);
        // Bounding box is 2·10¹² cells; the index holds two tiles.
        assert_eq!(idx.tile_count(), 2);
        assert_eq!(idx.capacity_cells(), 2 * TILE_CELLS);
        assert_eq!(idx.get(Point::new(1_000_000, -2_000_000)), Some(1));
        assert!(!idx.occupied(Point::new(500_000, -1_000_000)));
    }

    #[test]
    fn bounds_track_tile_extremes_exactly() {
        let mut idx = TileIndex::new();
        assert_eq!(idx.bounds(), None);
        idx.set(Point::new(3, 5), 0);
        assert_eq!(idx.bounds(), Some(Bounds { min: Point::new(3, 5), max: Point::new(3, 5) }));
        idx.set(Point::new(-130, 64), 1);
        idx.set(Point::new(40, -1), 2);
        assert_eq!(
            idx.bounds(),
            Some(Bounds { min: Point::new(-130, -1), max: Point::new(40, 64) })
        );
        // Clearing an extreme cell shrinks the bounds (its tile dies).
        idx.clear(Point::new(-130, 64));
        assert_eq!(idx.bounds(), Some(Bounds { min: Point::new(3, -1), max: Point::new(40, 5) }));
    }

    #[test]
    fn window_agrees_with_direct_probes() {
        let mut idx = TileIndex::new();
        let pts = [Point::new(0, 0), Point::new(63, 63), Point::new(64, 64), Point::new(-1, 70)];
        for (i, &p) in pts.iter().enumerate() {
            idx.set(p, i as u32);
        }
        for center in [Point::new(0, 0), Point::new(63, 63), Point::new(-10, 65)] {
            let win = idx.window(center, 20);
            for dy in -25..=25 {
                for dx in -25..=25 {
                    let p = Point::new(center.x + dx, center.y + dy);
                    assert_eq!(win.get(p), idx.get(p), "center {center:?} probe {p:?}");
                }
            }
        }
        // An oversized radius falls back to direct probes and still
        // answers correctly.
        let win = idx.window(Point::new(0, 0), 500);
        for &p in &pts {
            assert!(win.occupied(p));
        }
        assert!(!win.occupied(Point::new(7, 7)));
    }

    #[test]
    fn shard_tile_counts_sum_to_tile_count() {
        let mut idx = TileIndex::new();
        for i in 0..200 {
            idx.set(Point::new(i * 64, (i % 9) * 64), i as u32);
        }
        let counts = idx.shard_tile_counts();
        assert_eq!(counts.len(), NUM_SHARDS);
        assert_eq!(counts.iter().sum::<usize>(), idx.tile_count());
    }

    #[test]
    fn shard_lists_group_clear_and_iterate_in_order() {
        let mut lists = ShardLists::new();
        assert!(lists.is_empty());
        assert_eq!(lists.touched_shards().count(), 0);
        lists.push(5, 10);
        lists.push(0, 11);
        lists.push(5, 12);
        lists.push(63, 13);
        assert!(!lists.is_empty());
        assert_eq!(lists.len(), 4);
        assert_eq!(lists.touched_shards().collect::<Vec<_>>(), vec![0, 5, 63]);
        assert_eq!(lists.list(5), &[10, 12], "push order is preserved per shard");
        assert_eq!(lists.list(0), &[11]);
        assert_eq!(lists.list(7), &[] as &[u32], "untouched shards read empty");
        let cap_before = lists.lists[5].capacity();
        lists.clear();
        assert!(lists.is_empty());
        assert_eq!(lists.list(5), &[] as &[u32]);
        assert!(lists.lists[5].capacity() >= cap_before, "clear retains capacity");
    }

    #[test]
    fn shard_of_is_stable_per_tile() {
        for &p in &[Point::new(0, 0), Point::new(-1, -1), Point::new(1000, -4000)] {
            let s = shard_of(p);
            assert!(s < NUM_SHARDS);
            // Every cell of the tile shares the shard.
            let base = Point::new((p.x >> TILE_BITS) << TILE_BITS, (p.y >> TILE_BITS) << TILE_BITS);
            for off in [0, 1, 63] {
                assert_eq!(shard_of(Point::new(base.x + off, base.y)), s);
                assert_eq!(shard_of(Point::new(base.x, base.y + off)), s);
            }
        }
    }
}
