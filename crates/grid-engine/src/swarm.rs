//! The swarm: robot positions plus per-robot constant-size state, with a
//! tiled occupancy index and the FSYNC *simultaneous move + merge*
//! semantics of the paper's model.
//!
//! The round-apply is thread-scalable: a target cell belongs to exactly
//! one tile, and a tile to exactly one shard of the
//! [`TileIndex`](crate::tile::TileIndex), so merge detection and the
//! occupancy rebuild partition perfectly by shard and run on scoped
//! worker threads ([`Swarm::apply_partial_threads`]). The per-cell
//! survivor rule is a *minimum* over an order-free key, so the sharded
//! path is bit-identical to the sequential one on every thread count —
//! the property the trace subsystem's replay oracle checks.

use crate::geom::{Bounds, Point, D4, V2};
use crate::parallel::{
    for_each_shard_mut, parallel_map, parallel_map_coarse_clocked, shard_indices,
    PARALLEL_THRESHOLD,
};
use crate::profile::{timed, Phase, RoundProfile};
use crate::scheduler::splitmix64;
use crate::tile::{shard_of, TileIndex, NUM_SHARDS};

/// Per-robot algorithm state carried between rounds.
///
/// The model grants each robot a constant number of bits of persistent
/// memory (the paper's *run states*). States may contain direction
/// vectors; because robots do not share a compass, a state is always
/// stored in its owner's local frame and must be re-expressed when
/// another robot observes it — that is what [`RobotState::transform`]
/// implements.
pub trait RobotState: Clone + Default + Send + Sync + 'static {
    /// Return a copy with every direction vector `d` replaced by
    /// `m.apply(d)`.
    fn transform(&self, m: D4) -> Self;
}

impl RobotState for () {
    fn transform(&self, _m: D4) -> Self {}
}

/// How per-robot local frames are assigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrientationMode {
    /// All robots share the world frame. Decision-equivalent to
    /// `Scrambled` for a compass-free (equivariant) controller; used as
    /// the reference in the equivariance tests.
    Aligned,
    /// Every robot gets a pseudo-random fixed rotation/reflection of the
    /// world frame, derived from the seed — the honest "no compass, no
    /// common handedness" model.
    Scrambled(u64),
}

#[derive(Clone, Debug)]
pub struct Robot<S> {
    pub pos: Point,
    pub state: S,
    /// Maps this robot's frame into the world frame.
    pub orient: D4,
}

/// A robot's chosen operation for one round: a king-move step (or the
/// zero vector to stay) plus its next state, both in the robot's frame.
#[derive(Clone, Debug, Default)]
pub struct Action<S> {
    pub step: V2,
    pub state: S,
}

impl<S> Action<S> {
    pub fn stay(state: S) -> Self {
        Action { step: V2::ZERO, state }
    }
}

/// Result of applying one synchronous round of actions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Robots removed because they ended the round co-located.
    pub merged: usize,
    /// Robots whose position changed.
    pub moved: usize,
}

#[derive(Clone)]
pub struct Swarm<S: RobotState> {
    robots: Vec<Robot<S>>,
    index: TileIndex,
}

// Manual so states without Debug still get a printable swarm summary.
impl<S: RobotState> std::fmt::Debug for Swarm<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Swarm")
            .field("robots", &self.robots.len())
            .field("bounds", &self.index.bounds())
            .finish_non_exhaustive()
    }
}

/// The paper's goal predicate, factored so the fast path is testable: a
/// 2×2 area holds at most four robots (cells are distinct), so any
/// larger population fails *without touching positions at all* — the
/// bounds closure is only invoked for populations ≤ 4, making the
/// per-round goal check O(1) instead of an O(n) bounding-box rescan.
pub(crate) fn gathered_check(population: usize, bounds: impl FnOnce() -> Bounds) -> bool {
    population <= 4 && bounds().fits_2x2()
}

impl<S: RobotState> Swarm<S> {
    /// Build a swarm from distinct positions with default state.
    ///
    /// # Panics
    /// Panics if `positions` is empty or contains duplicates.
    pub fn new(positions: &[Point], orientation: OrientationMode) -> Self {
        assert!(!positions.is_empty(), "a swarm has at least one robot");
        let mut index = TileIndex::new();
        let mut robots = Vec::with_capacity(positions.len());
        for (i, &pos) in positions.iter().enumerate() {
            let orient = match orientation {
                OrientationMode::Aligned => D4::IDENTITY,
                OrientationMode::Scrambled(seed) => D4::from_index(
                    (splitmix64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9)) & 7) as u8,
                ),
            };
            let prev = index.set(pos, i as u32);
            assert!(prev.is_none(), "duplicate start position {pos:?}");
            robots.push(Robot { pos, state: S::default(), orient });
        }
        Swarm { robots, index }
    }

    pub fn len(&self) -> usize {
        self.robots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.robots.is_empty()
    }

    pub fn robots(&self) -> &[Robot<S>] {
        &self.robots
    }

    /// Mutable access to robot *states and orientations* (tests and
    /// setup). Positions are owned by the occupancy index — moving a
    /// robot through this slice would desynchronise it; rounds go
    /// through [`Swarm::apply`].
    pub fn robots_mut(&mut self) -> &mut [Robot<S>] {
        &mut self.robots
    }

    pub fn positions(&self) -> impl Iterator<Item = Point> + '_ {
        self.robots.iter().map(|r| r.pos)
    }

    /// Bounding box of the swarm, derived from the occupancy index's
    /// tile-key extremes (O(live tiles), independent of the population)
    /// rather than a rescan of every robot.
    pub fn bounds(&self) -> Bounds {
        self.index.bounds().expect("non-empty swarm")
    }

    /// The paper's goal predicate: all robots within a 2×2 area. O(1):
    /// see [`gathered_check`].
    pub fn is_gathered(&self) -> bool {
        gathered_check(self.robots.len(), || Bounds::of(self.positions()).expect("non-empty swarm"))
    }

    #[inline]
    pub fn occupied(&self, p: Point) -> bool {
        self.index.occupied(p)
    }

    /// Index of the robot at `p`, if any.
    #[inline]
    pub fn robot_at(&self, p: Point) -> Option<usize> {
        self.index.get(p).map(|id| id as usize)
    }

    /// The tiled occupancy index (diagnostics: tile/memory accounting,
    /// windowed probing).
    pub fn index(&self) -> &TileIndex {
        &self.index
    }

    /// Order-sensitive digest of the swarm's positions (robot order is
    /// deterministic, so two bit-identical runs share every digest).
    /// This is the snapshot fingerprint the trace subsystem records
    /// after each round and replay verifies against; robot *states* are
    /// excluded on purpose — they are strategy-internal, and any state
    /// divergence that matters surfaces as a positional one.
    pub fn position_digest(&self) -> u64 {
        let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ self.robots.len() as u64;
        for robot in &self.robots {
            let cell = ((robot.pos.x as u32 as u64) << 32) | robot.pos.y as u32 as u64;
            h = splitmix64(h ^ cell);
        }
        h
    }

    /// Apply one synchronous round: every robot simultaneously executes
    /// its action (steps are given in each robot's own frame); robots
    /// that end on the same cell are merged into one.
    ///
    /// Survivor rule (the paper removes "one of them", unspecified): a
    /// robot that did not move wins over movers, then the lexicographically
    /// smallest *previous* position wins. The rule is ID-free and
    /// deterministic, so runs are reproducible.
    pub fn apply(&mut self, actions: Vec<Action<S>>) -> ApplyOutcome {
        assert_eq!(actions.len(), self.robots.len());
        self.apply_partial(actions.into_iter().map(Some).collect())
    }

    /// Partial-activation variant of [`Swarm::apply`] for non-FSYNC
    /// schedulers: `None` means the robot was not activated this round —
    /// it keeps its position *and* its state (an inactive robot can
    /// still be merged into when an active robot lands on its cell, and
    /// the stationary-wins survivor rule then favours it).
    pub fn apply_partial(&mut self, actions: Vec<Option<Action<S>>>) -> ApplyOutcome {
        self.apply_partial_threads(actions, 1)
    }

    /// [`Swarm::apply`] with a worker-thread budget for the round-apply
    /// itself (merge detection and the occupancy rebuild shard by tile).
    pub fn apply_threads(&mut self, actions: Vec<Action<S>>, threads: usize) -> ApplyOutcome {
        self.apply_threads_profiled(actions, threads, None)
    }

    /// [`Swarm::apply_threads`] that additionally attributes the apply's
    /// sub-phases (targets, merge detect, rebuild, compaction) to `prof`
    /// when one is given. Timing observes the phases from outside, so
    /// the outcome is bit-identical with and without a profile.
    pub fn apply_threads_profiled(
        &mut self,
        actions: Vec<Action<S>>,
        threads: usize,
        prof: Option<&mut RoundProfile>,
    ) -> ApplyOutcome {
        assert_eq!(actions.len(), self.robots.len());
        self.apply_partial_threads_profiled(actions.into_iter().map(Some).collect(), threads, prof)
    }

    /// [`Swarm::apply_partial`] with a worker-thread budget. The outcome
    /// — survivors, their compacted order, every digest — is
    /// bit-identical for every `threads` value: the per-cell survivor
    /// rule is a minimum over the order-free key `(moved, previous
    /// position)`, so shard-local resolution cannot disagree with the
    /// sequential scan.
    pub fn apply_partial_threads(
        &mut self,
        actions: Vec<Option<Action<S>>>,
        threads: usize,
    ) -> ApplyOutcome {
        self.apply_partial_threads_profiled(actions, threads, None)
    }

    /// [`Swarm::apply_partial_threads`] with optional phase attribution
    /// into `prof` (see [`Swarm::apply_threads_profiled`]).
    pub fn apply_partial_threads_profiled(
        &mut self,
        actions: Vec<Option<Action<S>>>,
        threads: usize,
        prof: Option<&mut RoundProfile>,
    ) -> ApplyOutcome {
        assert_eq!(actions.len(), self.robots.len());
        let threads = crate::parallel::resolve_threads(threads);
        if threads <= 1 || self.robots.len() < PARALLEL_THRESHOLD {
            self.apply_partial_seq_profiled(actions, prof)
        } else {
            self.apply_partial_sharded_profiled(actions, threads, prof)
        }
    }

    /// World-frame target cell of robot `i` under `action`.
    #[inline]
    fn target_of(robot: &Robot<S>, action: &Option<Action<S>>) -> Point {
        match action {
            Some(action) => {
                debug_assert!(action.step.is_step(), "illegal step {:?}", action.step);
                robot.pos + robot.orient.apply(action.step)
            }
            None => robot.pos,
        }
    }

    /// Does `i` beat `j` for their shared target cell? Stationary wins
    /// over movers, then the lexicographically smaller previous position
    /// — a strict total order per cell (two stationary robots cannot
    /// share a target), so the winner is the same whatever the
    /// comparison order.
    #[inline]
    fn beats(&self, i: usize, j: usize, targets: &[Point]) -> bool {
        let i_stay = targets[i] == self.robots[i].pos;
        let j_stay = targets[j] == self.robots[j].pos;
        match (i_stay, j_stay) {
            (true, false) => true,
            (false, true) => false,
            _ => self.robots[i].pos < self.robots[j].pos,
        }
    }

    /// The sequential round-apply (exactly the historical semantics).
    /// Phase attribution is an approximation on this path: the final
    /// drain both rebuilds occupancy and compacts survivors, and is
    /// charged to [`Phase::Compact`]; [`Phase::OccupancyRebuild`] gets
    /// the old-cell clearing pass.
    fn apply_partial_seq_profiled(
        &mut self,
        actions: Vec<Option<Action<S>>>,
        prof: Option<&mut RoundProfile>,
    ) -> ApplyOutcome {
        let mut prof = prof;
        let n = self.robots.len();
        let (targets, moved) = timed(&mut prof, Phase::ApplyTargets, || {
            let mut targets: Vec<Point> = Vec::with_capacity(n);
            let mut moved = 0usize;
            for (robot, action) in self.robots.iter().zip(&actions) {
                let target = Self::target_of(robot, action);
                if target != robot.pos {
                    moved += 1;
                }
                targets.push(target);
            }
            (targets, moved)
        });

        // Group robots by target cell to find merges. The common case is
        // "no merge anywhere", so detect duplicates with a map from cell
        // to first-arriving robot index.
        let (survives, merged) = timed(&mut prof, Phase::MergeDetect, || {
            let mut owner: crate::fxhash::FxHashMap<Point, usize> =
                crate::fxhash::FxHashMap::default();
            owner.reserve(n);
            // survivor[i] = does robot i survive this round?
            let mut survives = vec![true; n];
            let mut merged = 0usize;
            for i in 0..n {
                match owner.entry(targets[i]) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(i);
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let j = *e.get();
                        if self.beats(i, j, &targets) {
                            survives[j] = false;
                            e.insert(i);
                        } else {
                            survives[i] = false;
                        }
                        merged += 1;
                    }
                }
            }
            (survives, merged)
        });

        // Clear old occupancy, then rebuild from survivors.
        timed(&mut prof, Phase::OccupancyRebuild, || {
            for robot in &self.robots {
                self.index.clear(robot.pos);
            }
        });
        timed(&mut prof, Phase::Compact, || {
            let mut next: Vec<Robot<S>> = Vec::with_capacity(n - merged);
            for (i, (mut robot, action)) in self.robots.drain(..).zip(actions).enumerate() {
                if !survives[i] {
                    continue;
                }
                robot.pos = targets[i];
                if let Some(action) = action {
                    robot.state = action.state;
                }
                let id = next.len() as u32;
                next.push(robot);
                let prev = self.index.set(targets[i], id);
                debug_assert!(prev.is_none(), "survivor collision at {:?}", targets[i]);
            }
            self.robots = next;
        });
        ApplyOutcome { merged, moved }
    }

    /// The sharded round-apply: merge detection and occupancy rebuild
    /// partition by the tile shard of the relevant cell and run on
    /// scoped worker threads; survivor compaction stays index-ordered.
    /// Exposed (doc-hidden) so the equivalence proptests can force this
    /// path on swarms below the parallel threshold.
    #[doc(hidden)]
    pub fn apply_partial_sharded(
        &mut self,
        actions: Vec<Option<Action<S>>>,
        threads: usize,
    ) -> ApplyOutcome {
        self.apply_partial_sharded_profiled(actions, threads, None)
    }

    /// [`Swarm::apply_partial_sharded`] with optional phase attribution.
    /// When profiling, the merge-resolve workers additionally clock each
    /// shard so the profile carries the min/max time over shards that
    /// had any targets — the imbalance figure for the parallel section.
    fn apply_partial_sharded_profiled(
        &mut self,
        actions: Vec<Option<Action<S>>>,
        threads: usize,
        prof: Option<&mut RoundProfile>,
    ) -> ApplyOutcome {
        let mut prof = prof;
        let timing = prof.is_some();
        let n = self.robots.len();
        assert_eq!(actions.len(), n);
        let robots = &self.robots;
        let (targets, moved) = timed(&mut prof, Phase::ApplyTargets, || {
            let targets: Vec<Point> =
                parallel_map(n, threads, |i| Self::target_of(&robots[i], &actions[i]));
            let moved = targets.iter().zip(robots).filter(|(t, r)| **t != r.pos).count();
            (targets, moved)
        });

        // Merge detection, sharded by target tile: each target cell
        // lives in exactly one shard, so per-shard resolution sees every
        // contender for its cells and no others.
        let target_groups = timed(&mut prof, Phase::MergeDetect, || {
            shard_indices(n, NUM_SHARDS, threads, |i| shard_of(targets[i]))
        });
        let mut survives = vec![true; n];
        let mut merged = 0usize;
        let mut worked_shard_ns: Vec<u64> = Vec::new();
        timed(&mut prof, Phase::MergeDetect, || {
            let shard_outcomes: Vec<((Vec<u32>, usize), u64)> =
                parallel_map_coarse_clocked(NUM_SHARDS, threads, timing, |s| {
                    let mut owner: crate::fxhash::FxHashMap<Point, u32> =
                        crate::fxhash::FxHashMap::default();
                    owner.reserve(target_groups[s].len());
                    let mut losers: Vec<u32> = Vec::new();
                    let mut shard_merged = 0usize;
                    for &i in &target_groups[s] {
                        match owner.entry(targets[i as usize]) {
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert(i);
                            }
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                let j = *e.get();
                                if self.beats(i as usize, j as usize, &targets) {
                                    losers.push(j);
                                    e.insert(i);
                                } else {
                                    losers.push(i);
                                }
                                shard_merged += 1;
                            }
                        }
                    }
                    (losers, shard_merged)
                });
            for (s, ((losers, shard_merged), ns)) in shard_outcomes.into_iter().enumerate() {
                merged += shard_merged;
                for i in losers {
                    survives[i as usize] = false;
                }
                if timing && !target_groups[s].is_empty() {
                    worked_shard_ns.push(ns);
                }
            }
        });
        if let Some(p) = prof.as_deref_mut() {
            p.shard_min_ns = worked_shard_ns.iter().copied().min().unwrap_or(0);
            p.shard_max_ns = worked_shard_ns.iter().copied().max().unwrap_or(0);
        }

        // Compacted id of each survivor, so the occupancy rebuild can
        // run before (and independently of) the sequential compaction.
        let (new_id, alive) = timed(&mut prof, Phase::Compact, || {
            let mut new_id = vec![0u32; n];
            let mut alive = 0u32;
            for (id, survive) in new_id.iter_mut().zip(&survives) {
                *id = alive;
                alive += u32::from(*survive);
            }
            (new_id, alive)
        });

        // Occupancy rebuild in two sharded phases: clear every robot's
        // old cell (grouped by old-position shard), then set every
        // survivor's target (grouped by target shard). Each phase gives
        // workers exclusive access to disjoint shards; within a shard,
        // the cells of a phase are distinct, so order is irrelevant.
        timed(&mut prof, Phase::OccupancyRebuild, || {
            let robots = &self.robots;
            let old_groups = shard_indices(n, NUM_SHARDS, threads, |i| shard_of(robots[i].pos));
            let Swarm { robots, index } = &mut *self;
            for_each_shard_mut(index.shards_mut(), threads, |s, shard| {
                for &i in &old_groups[s] {
                    shard.clear(robots[i as usize].pos);
                }
            });
            let survives_ref = &survives;
            let (targets_ref, new_id_ref) = (&targets, &new_id);
            for_each_shard_mut(index.shards_mut(), threads, |s, shard| {
                for &i in &target_groups[s] {
                    let i = i as usize;
                    if survives_ref[i] {
                        let prev = shard.set(targets_ref[i], new_id_ref[i]);
                        debug_assert!(prev.is_none(), "survivor collision at {:?}", targets_ref[i]);
                    }
                }
            });
        });

        // Index-ordered survivor compaction — identical to the
        // sequential path, so digests agree bit for bit.
        timed(&mut prof, Phase::Compact, || {
            let mut next: Vec<Robot<S>> = Vec::with_capacity(alive as usize);
            for (i, (mut robot, action)) in self.robots.drain(..).zip(actions).enumerate() {
                if !survives[i] {
                    continue;
                }
                robot.pos = targets[i];
                if let Some(action) = action {
                    robot.state = action.state;
                }
                next.push(robot);
            }
            self.robots = next;
        });
        ApplyOutcome { merged, moved }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: i32) -> Vec<Point> {
        (0..n).map(|x| Point::new(x, 0)).collect()
    }

    #[test]
    fn construction_and_queries() {
        let s: Swarm<()> = Swarm::new(&line(5), OrientationMode::Aligned);
        assert_eq!(s.len(), 5);
        assert!(s.occupied(Point::new(3, 0)));
        assert!(!s.occupied(Point::new(5, 0)));
        assert_eq!(s.robot_at(Point::new(2, 0)), Some(2));
        assert!(!s.is_gathered());
        let t: Swarm<()> =
            Swarm::new(&[Point::new(0, 0), Point::new(1, 1)], OrientationMode::Aligned);
        assert!(t.is_gathered());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_positions_rejected() {
        let _: Swarm<()> =
            Swarm::new(&[Point::new(0, 0), Point::new(0, 0)], OrientationMode::Aligned);
    }

    #[test]
    fn apply_moves_and_merges() {
        let mut s: Swarm<()> = Swarm::new(&line(3), OrientationMode::Aligned);
        // Robot 0 hops east onto robot 1; robots 1 and 2 stay.
        let actions = vec![Action { step: V2::E, state: () }, Action::stay(()), Action::stay(())];
        let out = s.apply(actions);
        assert_eq!(out.merged, 1);
        assert_eq!(out.moved, 1);
        assert_eq!(s.len(), 2);
        assert!(s.occupied(Point::new(1, 0)));
        assert!(s.occupied(Point::new(2, 0)));
        assert!(!s.occupied(Point::new(0, 0)));
    }

    #[test]
    fn stationary_robot_survives_merge() {
        #[derive(Clone, Default, PartialEq, Debug)]
        struct Tag(u8);
        impl RobotState for Tag {
            fn transform(&self, _m: D4) -> Self {
                self.clone()
            }
        }
        let mut s: Swarm<Tag> = Swarm::new(&line(2), OrientationMode::Aligned);
        let actions =
            vec![Action { step: V2::E, state: Tag(1) }, Action { step: V2::ZERO, state: Tag(2) }];
        s.apply(actions);
        assert_eq!(s.len(), 1);
        // The stationary robot (old index 1) survives and keeps its state.
        assert_eq!(s.robots()[0].state, Tag(2));
        assert_eq!(s.robots()[0].pos, Point::new(1, 0));
    }

    #[test]
    fn three_way_merge() {
        let mut s: Swarm<()> = Swarm::new(
            &[Point::new(0, 0), Point::new(2, 0), Point::new(1, 1)],
            OrientationMode::Aligned,
        );
        let actions = vec![
            Action { step: V2::E, state: () },
            Action { step: V2::W, state: () },
            Action { step: V2::S, state: () },
        ];
        let out = s.apply(actions);
        assert_eq!(out.merged, 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.robots()[0].pos, Point::new(1, 0));
    }

    #[test]
    fn scrambled_orientation_transforms_steps() {
        // A robot with a rotated frame stepping "east" in its own frame
        // must move along its rotated axis in the world.
        let mut s: Swarm<()> = Swarm::new(&[Point::new(0, 0)], OrientationMode::Aligned);
        s.robots_mut()[0].orient = D4 { rot: 1, flip: false }; // frame E -> world N
        s.apply(vec![Action { step: V2::E, state: () }]);
        assert_eq!(s.robots()[0].pos, Point::new(0, 1));
    }

    #[test]
    fn apply_partial_keeps_inactive_position_and_state() {
        #[derive(Clone, Default, PartialEq, Debug)]
        struct Tag(u8);
        impl RobotState for Tag {
            fn transform(&self, _m: D4) -> Self {
                self.clone()
            }
        }
        let mut s: Swarm<Tag> = Swarm::new(&line(3), OrientationMode::Aligned);
        s.robots_mut()[1].state = Tag(7);
        s.robots_mut()[2].state = Tag(9);
        // Only robot 0 is activated: it hops east onto inactive robot 1.
        let out = s.apply_partial(vec![Some(Action { step: V2::E, state: Tag(1) }), None, None]);
        assert_eq!(out, ApplyOutcome { merged: 1, moved: 1 });
        assert_eq!(s.len(), 2);
        // The inactive robot is stationary, so it wins the merge and
        // keeps both its position and its state.
        let survivor = s.robot_at(Point::new(1, 0)).unwrap();
        assert_eq!(s.robots()[survivor].state, Tag(7));
        assert_eq!(s.robots()[s.robot_at(Point::new(2, 0)).unwrap()].state, Tag(9));
    }

    #[test]
    fn apply_partial_with_all_some_matches_apply() {
        let mut a: Swarm<()> = Swarm::new(&line(4), OrientationMode::Aligned);
        let mut b = a.clone();
        let acts = |_: ()| vec![Action { step: V2::E, state: () }; 4];
        let oa = a.apply(acts(()));
        let ob = b.apply_partial(acts(()).into_iter().map(Some).collect());
        assert_eq!(oa, ob);
        let pa: Vec<Point> = a.positions().collect();
        let pb: Vec<Point> = b.positions().collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn position_digest_tracks_positions_only() {
        let a: Swarm<()> = Swarm::new(&line(5), OrientationMode::Aligned);
        let b: Swarm<()> = Swarm::new(&line(5), OrientationMode::Scrambled(3));
        // Same positions, different orientations/states: same digest.
        assert_eq!(a.position_digest(), b.position_digest());
        let c: Swarm<()> = Swarm::new(&line(6), OrientationMode::Aligned);
        assert_ne!(a.position_digest(), c.position_digest());
        let mut d = a.clone();
        d.apply(vec![
            Action { step: V2::N, state: () },
            Action::stay(()),
            Action::stay(()),
            Action::stay(()),
            Action::stay(()),
        ]);
        assert_ne!(a.position_digest(), d.position_digest());
    }

    #[test]
    fn swap_is_not_a_merge() {
        let mut s: Swarm<()> = Swarm::new(&line(2), OrientationMode::Aligned);
        let actions = vec![Action { step: V2::E, state: () }, Action { step: V2::W, state: () }];
        let out = s.apply(actions);
        assert_eq!(out.merged, 0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn sharded_apply_matches_sequential_on_a_merge_heavy_round() {
        // Everyone marches east: a cascade of pairwise decisions that
        // exercises winner replacement inside a shard.
        let pts = line(40);
        let acts = || (0..40).map(|_| Some(Action { step: V2::E, state: () })).collect::<Vec<_>>();
        let mut seq: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        let out_seq = seq.apply_partial(acts());
        for threads in [1usize, 2, 3, 8] {
            let mut par: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
            let out_par = par.apply_partial_sharded(acts(), threads);
            assert_eq!(out_par, out_seq, "threads={threads}");
            assert_eq!(par.position_digest(), seq.position_digest(), "threads={threads}");
            let pp: Vec<Point> = par.positions().collect();
            let sp: Vec<Point> = seq.positions().collect();
            assert_eq!(pp, sp, "threads={threads}");
            // The rebuilt occupancy index agrees with the robot list.
            for (i, r) in par.robots().iter().enumerate() {
                assert_eq!(par.robot_at(r.pos), Some(i), "threads={threads}");
            }
        }
    }

    #[test]
    fn sparse_swarm_memory_is_tiles_not_bounding_box() {
        // Two robots 10⁵ cells apart: the dense grid would need ~10¹⁰
        // cells; the tiled index holds two tiles.
        let pts = [Point::new(0, 0), Point::new(100_000, 100_000)];
        let s: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        assert_eq!(s.index().tile_count(), 2);
        assert_eq!(s.bounds(), Bounds { min: pts[0], max: pts[1] });
        assert!(!s.is_gathered());
    }

    /// Regression for the O(n)-per-round goal check: with more than four
    /// robots the predicate must decide *without touching positions* —
    /// the bounds closure is the old full rescan, so it must not run.
    #[test]
    fn gathered_check_never_rescans_large_populations() {
        assert!(!gathered_check(5, || -> Bounds { panic!("full bounding-box rescan") }));
        assert!(!gathered_check(1000, || -> Bounds { panic!("full bounding-box rescan") }));
        let b2 = Bounds { min: Point::new(0, 0), max: Point::new(1, 1) };
        assert!(gathered_check(4, || b2));
        assert!(!gathered_check(3, || Bounds { min: Point::new(0, 0), max: Point::new(2, 0) }));
    }
}
