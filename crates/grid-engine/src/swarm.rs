//! The swarm: robot positions plus per-robot constant-size state, with a
//! tiled occupancy index and the FSYNC *simultaneous move + merge*
//! semantics of the paper's model.
//!
//! # Structure-of-arrays layout
//!
//! Robots live in parallel dense arrays (`positions`, `states`,
//! `orients`, `handles`) rather than a `Vec<Robot>` of structs, so the
//! compute phase streams each attribute linearly and the round-apply
//! compacts survivors with flat array moves. Every robot additionally
//! carries a *stable handle* — its initial index, never reused (merges
//! only shrink the population). The occupancy index stores handles, and
//! `slot_of` maps a handle back to the robot's current dense slot
//! (`u32::MAX` once merged away). Two invariants follow:
//!
//! * **Compaction never touches the index.** Removing merge losers
//!   shifts dense slots, but cells keyed by handle stay valid — only the
//!   flat `slot_of` entries are rewritten.
//! * **Occupancy updates are movers-only.** A round clears the old cells
//!   of robots that moved and sets the target cells of moving survivors;
//!   stationary robots' cells are never rewritten. A mover can only win
//!   a cell that was empty or vacated this round (stationary incumbents
//!   win their cell by the survivor rule), so the two phases never
//!   collide with a live handle.
//!
//! # Parallel and sparse round paths
//!
//! The round-apply is thread-scalable: a target cell belongs to exactly
//! one tile, and a tile to exactly one shard of the
//! [`TileIndex`](crate::tile::TileIndex), so merge detection and the
//! occupancy update partition perfectly by shard and run on scoped
//! worker threads ([`Swarm::apply_partial_threads`]). Partial
//! activations additionally have a sparse path ([`Swarm::apply_sparse`])
//! whose cost is O(activated ∪ moved) instead of O(n): merge candidates
//! are only the robots that actually move (stationary incumbents are
//! found by probing the index), and per-shard active lists
//! ([`crate::tile::ShardLists`]) confine the occupancy phases to the
//! shards an active robot touches. The per-cell survivor rule is a
//! *minimum* over an order-free key, so the sharded and sparse paths are
//! bit-identical to the sequential dense one on every thread count — the
//! property the trace subsystem's replay oracle checks.

use crate::geom::{Bounds, Point, D4, V2};
use crate::parallel::{
    chunk_bounds, for_each_selected_shard_mut, for_each_shard_mut, parallel_map,
    parallel_map_coarse_clocked, resolve_threads, shard_indices, PARALLEL_THRESHOLD,
};
use crate::profile::{timed, Phase, RoundProfile};
use crate::scheduler::splitmix64;
use crate::tile::{shard_of, ShardLists, TileIndex, NUM_SHARDS};

/// Per-robot algorithm state carried between rounds.
///
/// The model grants each robot a constant number of bits of persistent
/// memory (the paper's *run states*). States may contain direction
/// vectors; because robots do not share a compass, a state is always
/// stored in its owner's local frame and must be re-expressed when
/// another robot observes it — that is what [`RobotState::transform`]
/// implements.
pub trait RobotState: Clone + Default + Send + Sync + 'static {
    /// Return a copy with every direction vector `d` replaced by
    /// `m.apply(d)`.
    fn transform(&self, m: D4) -> Self;
}

impl RobotState for () {
    fn transform(&self, _m: D4) -> Self {}
}

/// How per-robot local frames are assigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrientationMode {
    /// All robots share the world frame. Decision-equivalent to
    /// `Scrambled` for a compass-free (equivariant) controller; used as
    /// the reference in the equivariance tests.
    Aligned,
    /// Every robot gets a pseudo-random fixed rotation/reflection of the
    /// world frame, derived from the seed — the honest "no compass, no
    /// common handedness" model.
    Scrambled(u64),
}

/// A robot's chosen operation for one round: a king-move step (or the
/// zero vector to stay) plus its next state, both in the robot's frame.
#[derive(Clone, Debug, Default)]
pub struct Action<S> {
    pub step: V2,
    pub state: S,
}

impl<S> Action<S> {
    pub fn stay(state: S) -> Self {
        Action { step: V2::ZERO, state }
    }
}

/// Result of applying one synchronous round of actions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Robots removed because they ended the round co-located.
    pub merged: usize,
    /// Robots whose position changed.
    pub moved: usize,
}

/// Reusable per-round working memory. Every buffer retains its capacity
/// across rounds, so a steady-state round allocates nothing here. The
/// stamp arrays are indexed by dense slot and valid for exactly one
/// round: a slot is "marked" iff its stamp equals the current epoch, so
/// clearing the marks is a single counter increment, not an O(n) sweep.
#[derive(Clone, Default)]
struct RoundScratch<S> {
    /// Current round stamp; bumped once per apply.
    epoch: u32,
    /// `mover_stamp[i] == epoch` ⇔ dense slot `i` moves this round
    /// (maintained by the sparse path for incumbent classification).
    mover_stamp: Vec<u32>,
    /// `loser_stamp[i] == epoch` ⇔ dense slot `i` lost its merge this
    /// round (shared by every apply path; drives compaction).
    loser_stamp: Vec<u32>,
    /// Sparse path: target cell per active robot (indexed like `active`).
    targets: Vec<Point>,
    /// Sparse path: merge-detect owner map, keyed by target cell.
    owner: crate::fxhash::FxHashMap<Point, u32>,
    /// Sparse path: active movers grouped by the shard of their old cell.
    old_cells: ShardLists,
    /// Sparse path: surviving movers grouped by their target cell shard.
    new_cells: ShardLists,
    /// Touched-shard index buffer for the selected-shard dispatches.
    touched: Vec<usize>,
    /// Parallel-compaction gather buffers (double-buffered survivors).
    pos_buf: Vec<Point>,
    state_buf: Vec<S>,
    orient_buf: Vec<D4>,
    handle_buf: Vec<u32>,
}

impl<S> RoundScratch<S> {
    /// Start a new round: size the stamp arrays (dense slots never exceed
    /// the initial population) and advance the epoch, resetting the
    /// stamps on the (once per 2³²-round) wraparound so a stale stamp can
    /// never equal a live epoch.
    fn next_epoch(&mut self, n0: usize) -> u32 {
        if self.mover_stamp.len() < n0 {
            self.mover_stamp.resize(n0, 0);
            self.loser_stamp.resize(n0, 0);
        }
        if self.epoch == u32::MAX {
            self.mover_stamp.fill(0);
            self.loser_stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

#[derive(Clone)]
pub struct Swarm<S: RobotState> {
    positions: Vec<Point>,
    states: Vec<S>,
    orients: Vec<D4>,
    /// Dense slot → stable handle (the robot's initial index).
    handles: Vec<u32>,
    /// Handle → current dense slot; `u32::MAX` once merged away. The
    /// occupancy index stores handles, so compaction only rewrites this
    /// flat array and never touches tile cells.
    slot_of: Vec<u32>,
    /// ASYNC in-flight moves, keyed by *handle* so compaction never has
    /// to touch this store: `pending[h]` holds the round the parked
    /// action falls due plus the action itself (in the robot's local
    /// frame — orientations are fixed at birth, so a deferred
    /// local-frame step means the same world step whenever it commits).
    /// Lazily sized; empty for every synchronous scheduler.
    pending: Vec<Option<(u64, Action<S>)>>,
    /// Handles with a live `pending` entry (the O(in-flight) working
    /// set [`Swarm::take_due`] scans, instead of all handles).
    in_flight: Vec<u32>,
    index: TileIndex,
    scratch: RoundScratch<S>,
}

// Manual so states without Debug still get a printable swarm summary.
impl<S: RobotState> std::fmt::Debug for Swarm<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Swarm")
            .field("robots", &self.positions.len())
            .field("bounds", &self.index.bounds())
            .finish_non_exhaustive()
    }
}

/// The paper's goal predicate, factored so the fast path is testable: a
/// 2×2 area holds at most four robots (cells are distinct), so any
/// larger population fails *without touching positions at all* — the
/// bounds closure is only invoked for populations ≤ 4, making the
/// per-round goal check O(1) instead of an O(n) bounding-box rescan.
pub(crate) fn gathered_check(population: usize, bounds: impl FnOnce() -> Bounds) -> bool {
    population <= 4 && bounds().fits_2x2()
}

/// Does robot `i` beat robot `j` for their shared target cell?
/// Stationary wins over movers, then the lexicographically smaller
/// previous position — a strict total order per cell (two stationary
/// robots cannot share a target), so the winner is the same whatever the
/// comparison order.
#[inline]
fn beats(positions: &[Point], targets: &[Point], i: usize, j: usize) -> bool {
    let i_stay = targets[i] == positions[i];
    let j_stay = targets[j] == positions[j];
    match (i_stay, j_stay) {
        (true, false) => true,
        (false, true) => false,
        _ => positions[i] < positions[j],
    }
}

impl<S: RobotState> Swarm<S> {
    /// Build a swarm from distinct positions with default state.
    ///
    /// # Panics
    /// Panics if `positions` is empty or contains duplicates.
    pub fn new(positions: &[Point], orientation: OrientationMode) -> Self {
        assert!(!positions.is_empty(), "a swarm has at least one robot");
        let n = positions.len();
        assert!(n < u32::MAX as usize, "population must fit the index's u32 handles");
        let mut index = TileIndex::new();
        let mut orients = Vec::with_capacity(n);
        for (i, &pos) in positions.iter().enumerate() {
            let orient = match orientation {
                OrientationMode::Aligned => D4::IDENTITY,
                OrientationMode::Scrambled(seed) => D4::from_index(
                    (splitmix64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9)) & 7) as u8,
                ),
            };
            let prev = index.set(pos, i as u32);
            assert!(prev.is_none(), "duplicate start position {pos:?}");
            orients.push(orient);
        }
        Swarm {
            positions: positions.to_vec(),
            states: (0..n).map(|_| S::default()).collect(),
            orients,
            handles: (0..n as u32).collect(),
            slot_of: (0..n as u32).collect(),
            pending: Vec::new(),
            in_flight: Vec::new(),
            index,
            scratch: RoundScratch::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.positions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Current robot positions, in dense (survivor-compacted) order.
    /// Positions are owned by the occupancy index — they are only
    /// mutated through [`Swarm::apply`] and friends.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Per-robot algorithm states, parallel to [`Swarm::positions`].
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Mutable access to robot states (tests and setup). States are not
    /// indexed, so mutating them cannot desynchronise the swarm.
    pub fn states_mut(&mut self) -> &mut [S] {
        &mut self.states
    }

    /// Per-robot local frames (robot frame → world frame), parallel to
    /// [`Swarm::positions`].
    pub fn orients(&self) -> &[D4] {
        &self.orients
    }

    /// Mutable access to robot orientations (tests and setup).
    pub fn orients_mut(&mut self) -> &mut [D4] {
        &mut self.orients
    }

    /// Current dense slot of a stable handle read from the occupancy
    /// index (tile cells store handles, not dense slots).
    #[inline]
    pub(crate) fn slot(&self, handle: u32) -> usize {
        let slot = self.slot_of[handle as usize];
        debug_assert_ne!(slot, u32::MAX, "index cell held a merged-away handle");
        slot as usize
    }

    /// Stable handles of the live robots, parallel to
    /// [`Swarm::positions`] (a robot's handle is its initial index,
    /// never reused). The ASYNC engine keys its per-robot delay draws
    /// by handle so merges cannot re-roll another robot's schedule.
    pub fn handles(&self) -> &[u32] {
        &self.handles
    }

    /// Is the robot in dense slot `slot` mid-flight between an ASYNC
    /// look and its move? In-flight robots hold position, cannot look
    /// again, and (being stationary) always win the merges other
    /// robots walk into.
    #[inline]
    pub fn is_in_flight(&self, slot: usize) -> bool {
        let h = self.handles[slot] as usize;
        self.pending.get(h).is_some_and(Option::is_some)
    }

    /// Robots currently mid-flight (diagnostics and tests).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Park an ASYNC move: the robot in `slot` looked this round and
    /// its `action` commits in the round where [`Swarm::take_due`] is
    /// called with `round >= due`. The action is stored in the robot's
    /// local frame (orientations never change after birth, so deferral
    /// commutes with the frame transform). A robot can hold at most one
    /// pending move — it cannot look while in flight.
    pub fn park(&mut self, slot: usize, due: u64, action: Action<S>) {
        let h = self.handles[slot] as usize;
        if self.pending.len() <= h {
            self.pending.resize_with(self.slot_of.len(), || None);
        }
        debug_assert!(self.pending[h].is_none(), "robot {h} parked twice without committing");
        self.pending[h] = Some((due, action));
        self.in_flight.push(h as u32);
    }

    /// Drain every parked move that falls due at `round`, returning
    /// `(dense slot, action)` pairs sorted by slot — exactly the shape
    /// [`Swarm::apply_sparse`] wants to merge with the round's
    /// immediate movers. Deterministic regardless of park order: the
    /// store is keyed by handle and the output is slot-sorted. Handles
    /// merged away while in flight are dropped defensively (in-flight
    /// robots are stationary and stationary robots win merges, so this
    /// cannot happen under the engine's own scheduling).
    pub fn take_due(&mut self, round: u64) -> Vec<(usize, Action<S>)> {
        let mut out: Vec<(usize, Action<S>)> = Vec::new();
        let mut w = 0usize;
        for k in 0..self.in_flight.len() {
            let h = self.in_flight[k] as usize;
            let slot = self.slot_of[h];
            if slot == u32::MAX {
                self.pending[h] = None;
                continue;
            }
            let due = self.pending[h].as_ref().expect("in-flight handle has a pending entry").0;
            if due <= round {
                let (_, action) = self.pending[h].take().expect("checked above");
                out.push((slot as usize, action));
            } else {
                self.in_flight[w] = h as u32;
                w += 1;
            }
        }
        self.in_flight.truncate(w);
        out.sort_unstable_by_key(|&(slot, _)| slot);
        out
    }

    /// Bounding box of the swarm, derived from the occupancy index's
    /// tile-key extremes (O(live tiles), independent of the population)
    /// rather than a rescan of every robot.
    pub fn bounds(&self) -> Bounds {
        self.index.bounds().expect("non-empty swarm")
    }

    /// The paper's goal predicate: all robots within a 2×2 area. O(1):
    /// see [`gathered_check`].
    pub fn is_gathered(&self) -> bool {
        gathered_check(self.positions.len(), || {
            Bounds::of(self.positions.iter().copied()).expect("non-empty swarm")
        })
    }

    #[inline]
    pub fn occupied(&self, p: Point) -> bool {
        self.index.occupied(p)
    }

    /// Index of the robot at `p`, if any.
    #[inline]
    pub fn robot_at(&self, p: Point) -> Option<usize> {
        self.index.get(p).map(|h| self.slot(h))
    }

    /// The tiled occupancy index (diagnostics: tile/memory accounting,
    /// windowed probing).
    pub fn index(&self) -> &TileIndex {
        &self.index
    }

    /// Order-sensitive digest of the swarm's positions (robot order is
    /// deterministic, so two bit-identical runs share every digest).
    /// This is the snapshot fingerprint the trace subsystem records
    /// after each round and replay verifies against; robot *states* are
    /// excluded on purpose — they are strategy-internal, and any state
    /// divergence that matters surfaces as a positional one.
    pub fn position_digest(&self) -> u64 {
        let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ self.positions.len() as u64;
        for &pos in &self.positions {
            let cell = ((pos.x as u32 as u64) << 32) | pos.y as u32 as u64;
            h = splitmix64(h ^ cell);
        }
        h
    }

    /// Apply one synchronous round: every robot simultaneously executes
    /// its action (steps are given in each robot's own frame); robots
    /// that end on the same cell are merged into one.
    ///
    /// Survivor rule (the paper removes "one of them", unspecified): a
    /// robot that did not move wins over movers, then the lexicographically
    /// smallest *previous* position wins. The rule is ID-free and
    /// deterministic, so runs are reproducible.
    pub fn apply(&mut self, actions: Vec<Action<S>>) -> ApplyOutcome {
        assert_eq!(actions.len(), self.positions.len());
        self.apply_partial(actions.into_iter().map(Some).collect())
    }

    /// Partial-activation variant of [`Swarm::apply`] for non-FSYNC
    /// schedulers: `None` means the robot was not activated this round —
    /// it keeps its position *and* its state (an inactive robot can
    /// still be merged into when an active robot lands on its cell, and
    /// the stationary-wins survivor rule then favours it).
    pub fn apply_partial(&mut self, actions: Vec<Option<Action<S>>>) -> ApplyOutcome {
        self.apply_partial_threads(actions, 1)
    }

    /// [`Swarm::apply`] with a worker-thread budget for the round-apply
    /// itself (merge detection and the occupancy update shard by tile).
    pub fn apply_threads(&mut self, actions: Vec<Action<S>>, threads: usize) -> ApplyOutcome {
        self.apply_threads_profiled(actions, threads, None)
    }

    /// [`Swarm::apply_threads`] that additionally attributes the apply's
    /// sub-phases (targets, merge detect, occupancy, compaction) to
    /// `prof` when one is given. Timing observes the phases from
    /// outside, so the outcome is bit-identical with and without a
    /// profile.
    pub fn apply_threads_profiled(
        &mut self,
        actions: Vec<Action<S>>,
        threads: usize,
        prof: Option<&mut RoundProfile>,
    ) -> ApplyOutcome {
        assert_eq!(actions.len(), self.positions.len());
        self.apply_partial_threads_profiled(actions.into_iter().map(Some).collect(), threads, prof)
    }

    /// [`Swarm::apply_partial`] with a worker-thread budget. The outcome
    /// — survivors, their compacted order, every digest — is
    /// bit-identical for every `threads` value: the per-cell survivor
    /// rule is a minimum over the order-free key `(moved, previous
    /// position)`, so shard-local resolution cannot disagree with the
    /// sequential scan.
    pub fn apply_partial_threads(
        &mut self,
        actions: Vec<Option<Action<S>>>,
        threads: usize,
    ) -> ApplyOutcome {
        self.apply_partial_threads_profiled(actions, threads, None)
    }

    /// [`Swarm::apply_partial_threads`] with optional phase attribution
    /// into `prof` (see [`Swarm::apply_threads_profiled`]).
    pub fn apply_partial_threads_profiled(
        &mut self,
        actions: Vec<Option<Action<S>>>,
        threads: usize,
        prof: Option<&mut RoundProfile>,
    ) -> ApplyOutcome {
        assert_eq!(actions.len(), self.positions.len());
        let threads = resolve_threads(threads);
        if threads <= 1 || self.positions.len() < PARALLEL_THRESHOLD {
            self.apply_partial_seq_profiled(actions, prof)
        } else {
            self.apply_partial_sharded_profiled(actions, threads, prof)
        }
    }

    /// The sequential dense round-apply (exactly the historical
    /// semantics). Phases: target computation, merge detection over the
    /// full population, movers-only occupancy update, in-place survivor
    /// commit plus array compaction.
    fn apply_partial_seq_profiled(
        &mut self,
        actions: Vec<Option<Action<S>>>,
        prof: Option<&mut RoundProfile>,
    ) -> ApplyOutcome {
        let mut prof = prof;
        let n = self.positions.len();
        let epoch = self.scratch.next_epoch(self.slot_of.len());

        let mut targets = std::mem::take(&mut self.scratch.targets);
        let moved = timed(&mut prof, Phase::ApplyTargets, || {
            targets.clear();
            targets.reserve(n);
            let mut moved = 0usize;
            for (i, action) in actions.iter().enumerate() {
                let target = match action {
                    Some(action) => {
                        debug_assert!(action.step.is_step(), "illegal step {:?}", action.step);
                        self.positions[i] + self.orients[i].apply(action.step)
                    }
                    None => self.positions[i],
                };
                moved += usize::from(target != self.positions[i]);
                targets.push(target);
            }
            moved
        });

        // Group robots by target cell to find merges. The common case is
        // "no merge anywhere", so detect duplicates with a map from cell
        // to the currently-winning robot index.
        let mut owner = std::mem::take(&mut self.scratch.owner);
        let (merged, first_loser) = timed(&mut prof, Phase::MergeDetect, || {
            owner.clear();
            owner.reserve(n);
            let mut merged = 0usize;
            let mut first_loser = usize::MAX;
            for i in 0..n {
                match owner.entry(targets[i]) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(i as u32);
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let j = *e.get() as usize;
                        let loser = if beats(&self.positions, &targets, i, j) {
                            e.insert(i as u32);
                            j
                        } else {
                            i
                        };
                        self.scratch.loser_stamp[loser] = epoch;
                        first_loser = first_loser.min(loser);
                        merged += 1;
                    }
                }
            }
            (merged, first_loser)
        });
        self.scratch.owner = owner;

        // Movers-only occupancy update: every mover vacates its old cell
        // (losers are always movers), then each surviving mover claims
        // its target. Stationary cells are never rewritten — their
        // handles stay valid across the round.
        timed(&mut prof, Phase::OccupancyRebuild, || {
            for (i, &target) in targets.iter().enumerate() {
                if target != self.positions[i] {
                    self.index.clear(self.positions[i]);
                }
            }
            for (i, &target) in targets.iter().enumerate() {
                if target != self.positions[i] && self.scratch.loser_stamp[i] != epoch {
                    let prev = self.index.set(target, self.handles[i]);
                    debug_assert!(prev.is_none(), "survivor collision at {:?}", target);
                }
            }
        });

        // Commit in place (losers are overwritten too — they are about
        // to be compacted away), then compact the arrays.
        timed(&mut prof, Phase::Compact, || {
            for (i, action) in actions.into_iter().enumerate() {
                self.positions[i] = targets[i];
                if let Some(action) = action {
                    self.states[i] = action.state;
                }
            }
        });
        self.scratch.targets = targets;
        if merged > 0 {
            self.compact_tail(first_loser, 1, &mut prof);
        }
        ApplyOutcome { merged, moved }
    }

    /// The sharded dense round-apply: merge detection partitions by the
    /// tile shard of the target cell and runs on scoped worker threads,
    /// the occupancy update is movers-only and sharded the same way, and
    /// survivor compaction is a parallel prefix-sum over array chunks.
    /// Exposed (doc-hidden) so the equivalence proptests can force this
    /// path on swarms below the parallel threshold.
    #[doc(hidden)]
    pub fn apply_partial_sharded(
        &mut self,
        actions: Vec<Option<Action<S>>>,
        threads: usize,
    ) -> ApplyOutcome {
        self.apply_partial_sharded_profiled(actions, threads, None)
    }

    /// [`Swarm::apply_partial_sharded`] with optional phase attribution.
    /// When profiling, the merge-resolve workers additionally clock each
    /// shard so the profile carries the min/max time over shards that
    /// had any targets — the imbalance figure for the parallel section.
    fn apply_partial_sharded_profiled(
        &mut self,
        actions: Vec<Option<Action<S>>>,
        threads: usize,
        prof: Option<&mut RoundProfile>,
    ) -> ApplyOutcome {
        let mut prof = prof;
        let timing = prof.is_some();
        let n = self.positions.len();
        assert_eq!(actions.len(), n);
        let epoch = self.scratch.next_epoch(self.slot_of.len());
        let positions = &self.positions;
        let orients = &self.orients;
        let (targets, moved) = timed(&mut prof, Phase::ApplyTargets, || {
            let targets: Vec<Point> = parallel_map(n, threads, |i| match &actions[i] {
                Some(action) => {
                    debug_assert!(action.step.is_step(), "illegal step {:?}", action.step);
                    positions[i] + orients[i].apply(action.step)
                }
                None => positions[i],
            });
            let moved = targets.iter().zip(positions).filter(|(t, p)| *t != *p).count();
            (targets, moved)
        });

        // Merge detection, sharded by target tile: each target cell
        // lives in exactly one shard, so per-shard resolution sees every
        // contender for its cells and no others.
        let target_groups = timed(&mut prof, Phase::MergeDetect, || {
            shard_indices(n, NUM_SHARDS, threads, |i| shard_of(targets[i]))
        });
        let mut merged = 0usize;
        let mut first_loser = usize::MAX;
        let mut worked_shard_ns: Vec<u64> = Vec::new();
        timed(&mut prof, Phase::MergeDetect, || {
            let shard_outcomes: Vec<((Vec<u32>, usize), u64)> =
                parallel_map_coarse_clocked(NUM_SHARDS, threads, timing, |s| {
                    let mut owner: crate::fxhash::FxHashMap<Point, u32> =
                        crate::fxhash::FxHashMap::default();
                    owner.reserve(target_groups[s].len());
                    let mut losers: Vec<u32> = Vec::new();
                    let mut shard_merged = 0usize;
                    for &i in &target_groups[s] {
                        match owner.entry(targets[i as usize]) {
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert(i);
                            }
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                let j = *e.get();
                                if beats(positions, &targets, i as usize, j as usize) {
                                    losers.push(j);
                                    e.insert(i);
                                } else {
                                    losers.push(i);
                                }
                                shard_merged += 1;
                            }
                        }
                    }
                    (losers, shard_merged)
                });
            for (s, ((losers, shard_merged), ns)) in shard_outcomes.into_iter().enumerate() {
                merged += shard_merged;
                for i in losers {
                    self.scratch.loser_stamp[i as usize] = epoch;
                    first_loser = first_loser.min(i as usize);
                }
                if timing && !target_groups[s].is_empty() {
                    worked_shard_ns.push(ns);
                }
            }
        });
        if let Some(p) = prof.as_deref_mut() {
            p.shard_min_ns = worked_shard_ns.iter().copied().min().unwrap_or(0);
            p.shard_max_ns = worked_shard_ns.iter().copied().max().unwrap_or(0);
        }

        // Movers-only occupancy update in two sharded phases: clear every
        // mover's old cell (grouped by old-position shard), then set
        // every surviving mover's target (grouped by target shard). Each
        // phase gives workers exclusive access to disjoint shards;
        // within a shard, the cells of a phase are distinct, so order is
        // irrelevant.
        timed(&mut prof, Phase::OccupancyRebuild, || {
            let Swarm { positions, handles, index, scratch, .. } = &mut *self;
            let positions = &*positions;
            let old_groups = shard_indices(n, NUM_SHARDS, threads, |i| shard_of(positions[i]));
            let loser_stamp = &scratch.loser_stamp;
            for_each_shard_mut(index.shards_mut(), threads, |s, shard| {
                for &i in &old_groups[s] {
                    let i = i as usize;
                    if targets[i] != positions[i] {
                        shard.clear(positions[i]);
                    }
                }
            });
            for_each_shard_mut(index.shards_mut(), threads, |s, shard| {
                for &i in &target_groups[s] {
                    let i = i as usize;
                    if targets[i] != positions[i] && loser_stamp[i] != epoch {
                        let prev = shard.set(targets[i], handles[i]);
                        debug_assert!(prev.is_none(), "survivor collision at {:?}", targets[i]);
                    }
                }
            });
        });

        // Commit in place, then compact the arrays past the first loser.
        timed(&mut prof, Phase::Compact, || {
            self.positions.copy_from_slice(&targets);
            for (i, action) in actions.into_iter().enumerate() {
                if let Some(action) = action {
                    self.states[i] = action.state;
                }
            }
        });
        if merged > 0 {
            self.compact_tail(first_loser, threads, &mut prof);
        }
        ApplyOutcome { merged, moved }
    }

    /// Sparse partial apply: cost O(activated ∪ moved) instead of O(n).
    ///
    /// `active` lists the activated robots (sorted, distinct — the
    /// [`crate::scheduler::Activation::Subset`] contract) and `actions`
    /// their chosen actions, index-parallel to `active`. Inactive robots
    /// keep position and state; they participate in merges only as
    /// stationary incumbents, which this path discovers by probing the
    /// occupancy index at each mover's target instead of scanning the
    /// population. Bit-identical to routing the same round through
    /// [`Swarm::apply_partial`] with a scattered `Option` vector, on
    /// every thread count — the sparse/dense equivalence proptests pin
    /// exactly this.
    pub fn apply_sparse(&mut self, active: &[usize], actions: Vec<Action<S>>) -> ApplyOutcome {
        self.apply_sparse_threads(active, actions, 1)
    }

    /// [`Swarm::apply_sparse`] with a worker-thread budget (the sharded
    /// occupancy phases and the compaction use it; everything else is
    /// O(active) and runs on the calling thread).
    pub fn apply_sparse_threads(
        &mut self,
        active: &[usize],
        actions: Vec<Action<S>>,
        threads: usize,
    ) -> ApplyOutcome {
        self.apply_sparse_threads_profiled(active, actions, threads, None)
    }

    /// [`Swarm::apply_sparse_threads`] with optional phase attribution
    /// (active-list maintenance is charged to [`Phase::ActiveList`]).
    pub fn apply_sparse_threads_profiled(
        &mut self,
        active: &[usize],
        actions: Vec<Action<S>>,
        threads: usize,
        prof: Option<&mut RoundProfile>,
    ) -> ApplyOutcome {
        let mut prof = prof;
        let k = active.len();
        assert_eq!(actions.len(), k);
        let threads = resolve_threads(threads);
        let epoch = self.scratch.next_epoch(self.slot_of.len());
        debug_assert!(
            active.iter().all(|&i| i < self.positions.len()),
            "active index out of range"
        );
        debug_assert!(active.windows(2).all(|w| w[0] < w[1]), "activation set must be sorted");

        // Stamp the round's movers and group them into per-shard active
        // lists keyed by their *old* cell's shard — the working set of
        // the occupancy clear phase.
        let moved = timed(&mut prof, Phase::ActiveList, || {
            let Swarm { positions, orients, scratch, .. } = &mut *self;
            scratch.targets.clear();
            scratch.old_cells.clear();
            let mut moved = 0usize;
            for (ki, (&i, action)) in active.iter().zip(&actions).enumerate() {
                debug_assert!(action.step.is_step(), "illegal step {:?}", action.step);
                let target = positions[i] + orients[i].apply(action.step);
                scratch.targets.push(target);
                if target != positions[i] {
                    moved += 1;
                    scratch.mover_stamp[i] = epoch;
                    scratch.old_cells.push(shard_of(positions[i]), ki as u32);
                }
            }
            moved
        });

        // O(movers) merge detection. Contenders for a cell are the
        // movers targeting it plus at most one stationary incumbent
        // (found by an index probe — the only robot that can "stay" on
        // the cell is its current occupant). The owner map holds the
        // running winner per contested cell; the survivor rule is an
        // order-free minimum, so resolving movers in activation order is
        // bit-identical to the dense scan.
        let (merged, first_loser) = timed(&mut prof, Phase::MergeDetect, || {
            let Swarm { positions, index, slot_of, scratch, .. } = &mut *self;
            let RoundScratch { owner, targets, mover_stamp, loser_stamp, .. } = scratch;
            owner.clear();
            let mut merged = 0usize;
            let mut first_loser = usize::MAX;
            for (ki, &i) in active.iter().enumerate() {
                let target = targets[ki];
                if target == positions[i] {
                    continue;
                }
                match owner.entry(target) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        match index.get(target) {
                            Some(h) => {
                                let q = slot_of[h as usize] as usize;
                                if mover_stamp[q] != epoch {
                                    // A stationary incumbent wins its own
                                    // cell against any mover.
                                    e.insert(q as u32);
                                    loser_stamp[i] = epoch;
                                    first_loser = first_loser.min(i);
                                    merged += 1;
                                } else {
                                    // The occupant is vacating this round.
                                    e.insert(i as u32);
                                }
                            }
                            None => {
                                e.insert(i as u32);
                            }
                        }
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let j = *e.get() as usize;
                        // `j` stays iff it entered the map as a stationary
                        // incumbent (movers are stamped, incumbents not).
                        let j_stays = mover_stamp[j] != epoch;
                        let loser = if !j_stays && positions[i] < positions[j] {
                            e.insert(i as u32);
                            j
                        } else {
                            i
                        };
                        loser_stamp[loser] = epoch;
                        first_loser = first_loser.min(loser);
                        merged += 1;
                    }
                }
            }
            (merged, first_loser)
        });

        // Movers-only occupancy update over the touched shards only:
        // every mover vacates its old cell, each surviving mover claims
        // its target. A sparse round touches O(active) shards, and the
        // selected-shard dispatch sizes its chunking to that selection.
        timed(&mut prof, Phase::OccupancyRebuild, || {
            let Swarm { positions, handles, index, scratch, .. } = &mut *self;
            let RoundScratch { old_cells, new_cells, targets, loser_stamp, touched, .. } = scratch;
            new_cells.clear();
            for (ki, &i) in active.iter().enumerate() {
                if targets[ki] != positions[i] && loser_stamp[i] != epoch {
                    new_cells.push(shard_of(targets[ki]), ki as u32);
                }
            }
            touched.clear();
            touched.extend(old_cells.touched_shards());
            for_each_selected_shard_mut(index.shards_mut(), touched, threads, |s, shard| {
                for &ki in old_cells.list(s) {
                    shard.clear(positions[active[ki as usize]]);
                }
            });
            touched.clear();
            touched.extend(new_cells.touched_shards());
            for_each_selected_shard_mut(index.shards_mut(), touched, threads, |s, shard| {
                for &ki in new_cells.list(s) {
                    let ki = ki as usize;
                    let prev = shard.set(targets[ki], handles[active[ki]]);
                    debug_assert!(prev.is_none(), "survivor collision at {:?}", targets[ki]);
                }
            });
        });

        // Commit the surviving activated robots in place, then compact
        // past the first loser (no merges → no array traffic at all
        // beyond the k in-place writes).
        timed(&mut prof, Phase::Compact, || {
            let Swarm { positions, states, scratch, .. } = &mut *self;
            for ((ki, &i), action) in active.iter().enumerate().zip(actions) {
                if scratch.loser_stamp[i] == epoch {
                    continue;
                }
                positions[i] = scratch.targets[ki];
                states[i] = action.state;
            }
        });
        if merged > 0 {
            self.compact_tail(first_loser, threads, &mut prof);
        }
        ApplyOutcome { merged, moved }
    }

    /// Remove this round's merge losers from the dense arrays, starting
    /// at the first loser slot. Stable (survivor order is preserved), so
    /// the result is identical on every thread count; only `slot_of`
    /// entries are rewritten — tile cells key by handle and stay valid.
    ///
    /// Sequential below [`PARALLEL_THRESHOLD`] tail lengths; above it, a
    /// prefix-sum over per-thread chunks: each chunk counts its
    /// survivors, a serial exclusive prefix assigns output offsets, and
    /// the chunks gather their survivors into double buffers in
    /// parallel before a flat copy-back. When profiling, each gather
    /// chunk is clocked into `compact_min_ns`/`compact_max_ns`.
    fn compact_tail(&mut self, first: usize, threads: usize, prof: &mut Option<&mut RoundProfile>) {
        let n = self.positions.len();
        let epoch = self.scratch.epoch;
        debug_assert!(first < n, "compact_tail called without a loser");
        let tail = n - first;
        if threads <= 1 || tail < PARALLEL_THRESHOLD {
            timed(prof, Phase::Compact, || {
                let Swarm { positions, states, orients, handles, slot_of, scratch, .. } =
                    &mut *self;
                let loser_stamp = &scratch.loser_stamp;
                let mut w = first;
                for r in first..n {
                    if loser_stamp[r] == epoch {
                        slot_of[handles[r] as usize] = u32::MAX;
                        continue;
                    }
                    if w != r {
                        positions.swap(w, r);
                        states.swap(w, r);
                        orients.swap(w, r);
                        handles.swap(w, r);
                        slot_of[handles[w] as usize] = w as u32;
                    }
                    w += 1;
                }
                positions.truncate(w);
                states.truncate(w);
                orients.truncate(w);
                handles.truncate(w);
            });
            return;
        }
        let timing = prof.is_some();
        let (chunk_min_ns, chunk_max_ns) = timed(prof, Phase::Compact, || {
            let Swarm { positions, states, orients, handles, slot_of, scratch, .. } = &mut *self;
            let RoundScratch { loser_stamp, pos_buf, state_buf, orient_buf, handle_buf, .. } =
                scratch;
            let loser_stamp = &*loser_stamp;
            let bounds = chunk_bounds(tail, threads);
            // Per-chunk survivor counts and their exclusive prefix sum:
            // chunk c's survivors land at out[offsets[c]..offsets[c+1]].
            let counts: Vec<usize> = bounds
                .iter()
                .map(|&(lo, hi)| (lo..hi).filter(|&i| loser_stamp[first + i] != epoch).count())
                .collect();
            let mut offsets: Vec<usize> = Vec::with_capacity(bounds.len() + 1);
            offsets.push(0);
            for &c in &counts {
                offsets.push(offsets.last().expect("non-empty") + c);
            }
            let alive_tail = *offsets.last().expect("non-empty");
            // Retire the losers' handles while the arrays still hold them.
            for r in first..n {
                if loser_stamp[r] == epoch {
                    slot_of[handles[r] as usize] = u32::MAX;
                }
            }
            pos_buf.resize(alive_tail, Point::new(0, 0));
            orient_buf.resize(alive_tail, D4::IDENTITY);
            handle_buf.resize(alive_tail, 0);
            state_buf.clear();
            state_buf.resize_with(alive_tail, S::default);

            // Parallel gather: chunk c reads tail indices [lo..hi) and
            // writes its survivors to buffer range [offsets[c]..); the
            // source and destination chunk slices are disjoint, so the
            // workers share nothing mutable.
            struct GatherJob<'a, S> {
                lo: usize,
                hi: usize,
                state_src: &'a mut [S],
                pos_out: &'a mut [Point],
                state_out: &'a mut [S],
                orient_out: &'a mut [D4],
                handle_out: &'a mut [u32],
            }
            let mut jobs: Vec<GatherJob<'_, S>> = Vec::with_capacity(bounds.len());
            {
                let mut state_rest = &mut states[first..];
                let mut pos_rest = pos_buf.as_mut_slice();
                let mut state_out_rest = state_buf.as_mut_slice();
                let mut orient_rest = orient_buf.as_mut_slice();
                let mut handle_rest = handle_buf.as_mut_slice();
                for (c, &(lo, hi)) in bounds.iter().enumerate() {
                    let (state_src, tail) = state_rest.split_at_mut(hi - lo);
                    state_rest = tail;
                    let (pos_out, tail) = pos_rest.split_at_mut(counts[c]);
                    pos_rest = tail;
                    let (state_out, tail) = state_out_rest.split_at_mut(counts[c]);
                    state_out_rest = tail;
                    let (orient_out, tail) = orient_rest.split_at_mut(counts[c]);
                    orient_rest = tail;
                    let (handle_out, tail) = handle_rest.split_at_mut(counts[c]);
                    handle_rest = tail;
                    jobs.push(GatherJob {
                        lo,
                        hi,
                        state_src,
                        pos_out,
                        state_out,
                        orient_out,
                        handle_out,
                    });
                }
            }
            let pos_src = &positions[first..];
            let orient_src = &orients[first..];
            let handle_src = &handles[first..];
            let run_job = |job: &mut GatherJob<'_, S>| -> u64 {
                // audit: allow(wall-clock) gather timing is profiler-gated
                // and observational only — the compacted arrays are
                // clock-independent
                let start = timing.then(std::time::Instant::now);
                let mut w = 0usize;
                for r in job.lo..job.hi {
                    if loser_stamp[first + r] == epoch {
                        continue;
                    }
                    job.pos_out[w] = pos_src[r];
                    job.orient_out[w] = orient_src[r];
                    job.handle_out[w] = handle_src[r];
                    job.state_out[w] = std::mem::take(&mut job.state_src[r - job.lo]);
                    w += 1;
                }
                debug_assert_eq!(w, job.pos_out.len(), "chunk survivor count drifted");
                start.map_or(0, |t| t.elapsed().as_nanos() as u64)
            };
            let mut chunk_ns: Vec<u64> = Vec::with_capacity(jobs.len());
            std::thread::scope(|scope| {
                let mut spawned = Vec::with_capacity(jobs.len().saturating_sub(1));
                let mut jobs_iter = jobs.iter_mut();
                let head = jobs_iter.next().expect("at least one chunk");
                for job in jobs_iter {
                    let run_job = &run_job;
                    spawned.push(scope.spawn(move || run_job(job)));
                }
                chunk_ns.push(run_job(head));
                for h in spawned {
                    chunk_ns.push(h.join().expect("compaction worker panicked"));
                }
            });

            // Flat copy-back and slot rewrite, then truncate. The slot
            // rewrite is a sequential pass over the moved tail — cheap
            // contiguous writes against a scattered parallel alternative.
            positions[first..first + alive_tail].copy_from_slice(&pos_buf[..alive_tail]);
            orients[first..first + alive_tail].copy_from_slice(&orient_buf[..alive_tail]);
            handles[first..first + alive_tail].copy_from_slice(&handle_buf[..alive_tail]);
            for (i, s) in state_buf.iter_mut().enumerate() {
                states[first + i] = std::mem::take(s);
            }
            for i in first..first + alive_tail {
                slot_of[handles[i] as usize] = i as u32;
            }
            positions.truncate(first + alive_tail);
            states.truncate(first + alive_tail);
            orients.truncate(first + alive_tail);
            handles.truncate(first + alive_tail);
            if timing {
                (
                    chunk_ns.iter().copied().min().unwrap_or(0),
                    chunk_ns.iter().copied().max().unwrap_or(0),
                )
            } else {
                (0, 0)
            }
        });
        if let Some(p) = prof.as_deref_mut() {
            p.compact_min_ns = chunk_min_ns;
            p.compact_max_ns = chunk_max_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: i32) -> Vec<Point> {
        (0..n).map(|x| Point::new(x, 0)).collect()
    }

    #[test]
    fn construction_and_queries() {
        let s: Swarm<()> = Swarm::new(&line(5), OrientationMode::Aligned);
        assert_eq!(s.len(), 5);
        assert!(s.occupied(Point::new(3, 0)));
        assert!(!s.occupied(Point::new(5, 0)));
        assert_eq!(s.robot_at(Point::new(2, 0)), Some(2));
        assert!(!s.is_gathered());
        let t: Swarm<()> =
            Swarm::new(&[Point::new(0, 0), Point::new(1, 1)], OrientationMode::Aligned);
        assert!(t.is_gathered());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_positions_rejected() {
        let _: Swarm<()> =
            Swarm::new(&[Point::new(0, 0), Point::new(0, 0)], OrientationMode::Aligned);
    }

    #[test]
    fn apply_moves_and_merges() {
        let mut s: Swarm<()> = Swarm::new(&line(3), OrientationMode::Aligned);
        // Robot 0 hops east onto robot 1; robots 1 and 2 stay.
        let actions = vec![Action { step: V2::E, state: () }, Action::stay(()), Action::stay(())];
        let out = s.apply(actions);
        assert_eq!(out.merged, 1);
        assert_eq!(out.moved, 1);
        assert_eq!(s.len(), 2);
        assert!(s.occupied(Point::new(1, 0)));
        assert!(s.occupied(Point::new(2, 0)));
        assert!(!s.occupied(Point::new(0, 0)));
    }

    #[test]
    fn stationary_robot_survives_merge() {
        #[derive(Clone, Default, PartialEq, Debug)]
        struct Tag(u8);
        impl RobotState for Tag {
            fn transform(&self, _m: D4) -> Self {
                self.clone()
            }
        }
        let mut s: Swarm<Tag> = Swarm::new(&line(2), OrientationMode::Aligned);
        let actions =
            vec![Action { step: V2::E, state: Tag(1) }, Action { step: V2::ZERO, state: Tag(2) }];
        s.apply(actions);
        assert_eq!(s.len(), 1);
        // The stationary robot (old index 1) survives and keeps its state.
        assert_eq!(s.states()[0], Tag(2));
        assert_eq!(s.positions()[0], Point::new(1, 0));
    }

    #[test]
    fn three_way_merge() {
        let mut s: Swarm<()> = Swarm::new(
            &[Point::new(0, 0), Point::new(2, 0), Point::new(1, 1)],
            OrientationMode::Aligned,
        );
        let actions = vec![
            Action { step: V2::E, state: () },
            Action { step: V2::W, state: () },
            Action { step: V2::S, state: () },
        ];
        let out = s.apply(actions);
        assert_eq!(out.merged, 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.positions()[0], Point::new(1, 0));
    }

    #[test]
    fn scrambled_orientation_transforms_steps() {
        // A robot with a rotated frame stepping "east" in its own frame
        // must move along its rotated axis in the world.
        let mut s: Swarm<()> = Swarm::new(&[Point::new(0, 0)], OrientationMode::Aligned);
        s.orients_mut()[0] = D4 { rot: 1, flip: false }; // frame E -> world N
        s.apply(vec![Action { step: V2::E, state: () }]);
        assert_eq!(s.positions()[0], Point::new(0, 1));
    }

    #[test]
    fn apply_partial_keeps_inactive_position_and_state() {
        #[derive(Clone, Default, PartialEq, Debug)]
        struct Tag(u8);
        impl RobotState for Tag {
            fn transform(&self, _m: D4) -> Self {
                self.clone()
            }
        }
        let mut s: Swarm<Tag> = Swarm::new(&line(3), OrientationMode::Aligned);
        s.states_mut()[1] = Tag(7);
        s.states_mut()[2] = Tag(9);
        // Only robot 0 is activated: it hops east onto inactive robot 1.
        let out = s.apply_partial(vec![Some(Action { step: V2::E, state: Tag(1) }), None, None]);
        assert_eq!(out, ApplyOutcome { merged: 1, moved: 1 });
        assert_eq!(s.len(), 2);
        // The inactive robot is stationary, so it wins the merge and
        // keeps both its position and its state.
        let survivor = s.robot_at(Point::new(1, 0)).unwrap();
        assert_eq!(s.states()[survivor], Tag(7));
        assert_eq!(s.states()[s.robot_at(Point::new(2, 0)).unwrap()], Tag(9));
    }

    #[test]
    fn apply_partial_with_all_some_matches_apply() {
        let mut a: Swarm<()> = Swarm::new(&line(4), OrientationMode::Aligned);
        let mut b = a.clone();
        let acts = |_: ()| vec![Action { step: V2::E, state: () }; 4];
        let oa = a.apply(acts(()));
        let ob = b.apply_partial(acts(()).into_iter().map(Some).collect());
        assert_eq!(oa, ob);
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn position_digest_tracks_positions_only() {
        let a: Swarm<()> = Swarm::new(&line(5), OrientationMode::Aligned);
        let b: Swarm<()> = Swarm::new(&line(5), OrientationMode::Scrambled(3));
        // Same positions, different orientations/states: same digest.
        assert_eq!(a.position_digest(), b.position_digest());
        let c: Swarm<()> = Swarm::new(&line(6), OrientationMode::Aligned);
        assert_ne!(a.position_digest(), c.position_digest());
        let mut d = a.clone();
        d.apply(vec![
            Action { step: V2::N, state: () },
            Action::stay(()),
            Action::stay(()),
            Action::stay(()),
            Action::stay(()),
        ]);
        assert_ne!(a.position_digest(), d.position_digest());
    }

    #[test]
    fn swap_is_not_a_merge() {
        let mut s: Swarm<()> = Swarm::new(&line(2), OrientationMode::Aligned);
        let actions = vec![Action { step: V2::E, state: () }, Action { step: V2::W, state: () }];
        let out = s.apply(actions);
        assert_eq!(out.merged, 0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn sharded_apply_matches_sequential_on_a_merge_heavy_round() {
        // Everyone marches east: a cascade of pairwise decisions that
        // exercises winner replacement inside a shard.
        let pts = line(40);
        let acts = || (0..40).map(|_| Some(Action { step: V2::E, state: () })).collect::<Vec<_>>();
        let mut seq: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        let out_seq = seq.apply_partial(acts());
        for threads in [1usize, 2, 3, 8] {
            let mut par: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
            let out_par = par.apply_partial_sharded(acts(), threads);
            assert_eq!(out_par, out_seq, "threads={threads}");
            assert_eq!(par.position_digest(), seq.position_digest(), "threads={threads}");
            assert_eq!(par.positions(), seq.positions(), "threads={threads}");
            // The occupancy index agrees with the compacted arrays.
            for (i, &p) in par.positions().iter().enumerate() {
                assert_eq!(par.robot_at(p), Some(i), "threads={threads}");
            }
        }
    }

    /// The sparse path must match the dense path exactly: same outcome,
    /// same survivor order, same digest, coherent index — across every
    /// activation pattern that exercises the incumbent probe (mover onto
    /// stayer, mover onto vacated cell, mover-vs-mover, chains).
    #[test]
    fn sparse_apply_matches_dense_on_partial_rounds() {
        let pts = [
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(3, 0),
            Point::new(0, 1),
            Point::new(2, 1),
        ];
        // Robots 0 and 2 hop east (0 onto inactive 1 -> loses; 2 onto
        // 3's cell -> loses to the inactive stayer), 4 hops east onto an
        // empty cell, 5 stays put while active.
        let active = [0usize, 2, 4, 5];
        let acts = || {
            vec![
                Action { step: V2::E, state: () },
                Action { step: V2::E, state: () },
                Action { step: V2::E, state: () },
                Action::stay(()),
            ]
        };
        let dense_actions = || {
            let mut all: Vec<Option<Action<()>>> = (0..pts.len()).map(|_| None).collect();
            for (&i, a) in active.iter().zip(acts()) {
                all[i] = Some(a);
            }
            all
        };
        let mut dense: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        let out_dense = dense.apply_partial(dense_actions());
        assert_eq!(out_dense, ApplyOutcome { merged: 2, moved: 3 });
        for threads in [1usize, 2, 3, 8] {
            let mut sparse: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
            let out = sparse.apply_sparse_threads(&active, acts(), threads);
            assert_eq!(out, out_dense, "threads={threads}");
            assert_eq!(sparse.positions(), dense.positions(), "threads={threads}");
            assert_eq!(sparse.position_digest(), dense.position_digest(), "threads={threads}");
            for (i, &p) in sparse.positions().iter().enumerate() {
                assert_eq!(sparse.robot_at(p), Some(i), "threads={threads}");
            }
        }
    }

    /// Repeated sparse rounds keep handles and the index coherent across
    /// compactions (the stable-handle invariant: tile cells survive
    /// compaction untouched, only `slot_of` is rewritten).
    #[test]
    fn sparse_rounds_keep_index_coherent_across_compactions() {
        let pts: Vec<Point> = (0..12).map(|x| Point::new(x, 0)).collect();
        let mut s: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        let mut merged_total = 0usize;
        for round in 0..300u64 {
            // Activate a deterministic sliding pair; both step east, so
            // movers regularly land on stationary robots and merge.
            let n = s.len();
            if n < 2 {
                break;
            }
            let a = (round as usize) % (n - 1);
            let active = vec![a, a + 1];
            let acts = active.iter().map(|_| Action { step: V2::E, state: () }).collect();
            merged_total += s.apply_sparse(&active, acts).merged;
            for (i, &p) in s.positions().iter().enumerate() {
                assert_eq!(s.robot_at(p), Some(i), "round {round}");
            }
            assert!(s.index().tile_count() > 0);
        }
        assert!(merged_total > 0, "the march must trigger compactions");
        assert!(s.len() < pts.len());
    }

    #[test]
    fn sparse_empty_activation_is_identity() {
        let mut s: Swarm<()> = Swarm::new(&line(4), OrientationMode::Aligned);
        let before = s.position_digest();
        let out = s.apply_sparse(&[], Vec::new());
        assert_eq!(out, ApplyOutcome::default());
        assert_eq!(s.position_digest(), before);
    }

    #[test]
    fn sparse_swarm_memory_is_tiles_not_bounding_box() {
        // Two robots 10⁵ cells apart: the dense grid would need ~10¹⁰
        // cells; the tiled index holds two tiles.
        let pts = [Point::new(0, 0), Point::new(100_000, 100_000)];
        let s: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        assert_eq!(s.index().tile_count(), 2);
        assert_eq!(s.bounds(), Bounds { min: pts[0], max: pts[1] });
        assert!(!s.is_gathered());
    }

    /// Regression for the O(n)-per-round goal check: with more than four
    /// robots the predicate must decide *without touching positions* —
    /// the bounds closure is the old full rescan, so it must not run.
    #[test]
    fn gathered_check_never_rescans_large_populations() {
        assert!(!gathered_check(5, || -> Bounds { panic!("full bounding-box rescan") }));
        assert!(!gathered_check(1000, || -> Bounds { panic!("full bounding-box rescan") }));
        let b2 = Bounds { min: Point::new(0, 0), max: Point::new(1, 1) };
        assert!(gathered_check(4, || b2));
        assert!(!gathered_check(3, || Bounds { min: Point::new(0, 0), max: Point::new(2, 0) }));
    }

    #[test]
    fn pending_store_parks_and_drains_by_slot() {
        let mut s: Swarm<()> = Swarm::new(&line(5), OrientationMode::Aligned);
        assert_eq!(s.in_flight_count(), 0);
        // Park out of slot order with different due rounds.
        s.park(3, 2, Action { step: V2::E, state: () });
        s.park(1, 1, Action { step: V2::W, state: () });
        s.park(4, 1, Action::stay(()));
        assert_eq!(s.in_flight_count(), 3);
        assert!(s.is_in_flight(1) && s.is_in_flight(3) && s.is_in_flight(4));
        assert!(!s.is_in_flight(0) && !s.is_in_flight(2));
        assert!(s.take_due(0).is_empty(), "nothing due before round 1");
        let due: Vec<usize> = s.take_due(1).into_iter().map(|(slot, _)| slot).collect();
        assert_eq!(due, vec![1, 4], "due moves drain sorted by slot");
        assert_eq!(s.in_flight_count(), 1);
        assert!(!s.is_in_flight(1) && s.is_in_flight(3));
        let due: Vec<usize> = s.take_due(2).into_iter().map(|(slot, _)| slot).collect();
        assert_eq!(due, vec![3]);
        assert_eq!(s.in_flight_count(), 0);
    }

    #[test]
    fn pending_store_survives_compaction_via_handles() {
        // Robot 3 parks; robots 0 and 1 then merge (0 marches onto 1),
        // compacting the dense arrays. The parked entry is keyed by
        // handle, so it must still resolve to robot 3's new slot.
        let mut s: Swarm<()> = Swarm::new(&line(4), OrientationMode::Aligned);
        s.park(3, 5, Action { step: V2::W, state: () });
        let out = s.apply_sparse(&[0], vec![Action { step: V2::E, state: () }]);
        assert_eq!(out.merged, 1);
        assert_eq!(s.len(), 3);
        let slot3 = s.robot_at(Point::new(3, 0)).expect("robot 3 still present");
        assert!(s.is_in_flight(slot3), "pending entry lost across compaction");
        let due = s.take_due(5);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].0, slot3);
    }

    /// The parallel prefix-sum compaction must agree with the serial
    /// swap-shift on every thread count, including survivor order and
    /// `slot_of` coherence, on a tail long enough to actually chunk.
    #[test]
    fn parallel_compaction_is_bit_identical_to_serial() {
        let n = 3000i32;
        let pts: Vec<Point> = (0..n).map(|x| Point::new(x, 0)).collect();
        let acts = || -> Vec<Option<Action<()>>> {
            (0..n)
                .map(|i| {
                    if i % 3 == 1 {
                        Some(Action { step: V2::W, state: () })
                    } else {
                        Some(Action::stay(()))
                    }
                })
                .collect()
        };
        let mut seq: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
        let out_seq = seq.apply_partial_threads(acts(), 1);
        assert!(out_seq.merged > 0);
        for threads in [2usize, 3, 8] {
            let mut par: Swarm<()> = Swarm::new(&pts, OrientationMode::Aligned);
            let out = par.apply_partial_sharded(acts(), threads);
            assert_eq!(out, out_seq, "threads={threads}");
            assert_eq!(par.positions(), seq.positions(), "threads={threads}");
            assert_eq!(par.position_digest(), seq.position_digest(), "threads={threads}");
            for (i, &p) in par.positions().iter().enumerate() {
                assert_eq!(par.robot_at(p), Some(i), "threads={threads}");
            }
        }
    }
}
