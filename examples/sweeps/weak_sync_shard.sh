#!/usr/bin/env sh
# Print the per-shard command lines (plus the final verified merge) that
# run the 2000-scenario weak-synchrony sweep as M shards — one line per
# machine, no coordination needed: the hash partitioner splits the spec
# identically everywhere, and each shard writes a manifest that
# `campaign merge` uses to prove the outputs cover the spec exactly once.
#
# Usage:   examples/sweeps/weak_sync_shard.sh [M]     (default: 4 shards)
# Execute: run each printed `campaign run` line on its machine, collect
#          the .jsonl + .manifest.json pairs in one place, then run the
#          printed `campaign merge` line and `campaign summarize`.
set -eu
cd "$(dirname "$0")/../.."
exec cargo run --release --bin campaign -- plan --shards "${1:-4}" \
    --spec examples/sweeps/weak_sync.json --out weak_sync.jsonl
