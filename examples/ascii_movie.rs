//! Record a full gathering as an ASCII trace plus a final SVG snapshot.
//!
//! ```sh
//! cargo run --release --example ascii_movie -- diamond 200 > movie.txt
//! ```

use gather_viz::{svg, Trace};
use gather_workloads::{all_families, family, Family};
use grid_gathering::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "diamond".into());
    let n: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(150);
    let fam = Family::parse(&which).unwrap_or_else(|| {
        panic!("unknown family {which}; try one of {:?}", all_families().map(|f| f.name()))
    });

    let cells = family(fam, n, 1);
    let mut engine = Engine::from_positions(
        &cells,
        OrientationMode::Scrambled(1),
        GatherController::paper(),
        EngineConfig::default(),
    );
    let mut trace = Trace::new();
    let mut round = 0u64;
    trace.record(round, &engine.swarm);
    while !engine.swarm.is_gathered() && round < 200_000 {
        engine.step().expect("steps");
        round += 1;
        if round.is_multiple_of(10) {
            trace.record(round, &engine.swarm);
        }
    }
    trace.record(round, &engine.swarm);
    println!("{}", trace.render());
    let doc = svg(&engine.swarm, 8);
    std::fs::write("final.svg", &doc).ok();
    eprintln!("gathered {} robots in {round} rounds; final.svg written", cells.len());
}
