//! Record a full gathering as a trace, then render it as an ASCII movie
//! plus a final SVG snapshot — the same record/playback pipeline
//! `campaign record` uses, so a `.gtrc` file from any campaign renders
//! identically.
//!
//! ```sh
//! cargo run --release --example ascii_movie -- diamond 200 > movie.txt
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use gather_viz::{svg, Trace};
use gather_workloads::{all_families, family, Family};
use grid_engine::RoundRecord;
use grid_gathering::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "diamond".into());
    let n: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(150);
    let fam = Family::parse(&which).unwrap_or_else(|| {
        panic!("unknown family {which}; try one of {:?}", all_families().map(|f| f.name()))
    });

    let cells = family(fam, n, 1);
    let mut engine = Engine::from_positions(
        &cells,
        OrientationMode::Scrambled(1),
        GatherController::paper(),
        EngineConfig::default(),
    );
    // Record the run through the trace observer instead of sampling the
    // live swarm: the movie is a pure function of the round records.
    let rounds: Rc<RefCell<Vec<RoundRecord>>> = Rc::default();
    let sink = rounds.clone();
    engine.set_observer(Box::new(move |rec| sink.borrow_mut().push(rec.clone())));
    let mut round = 0u64;
    while !engine.swarm.is_gathered() && round < 200_000 {
        engine.step().expect("steps");
        round += 1;
    }
    let rounds = rounds.borrow();
    let trace = Trace::from_rounds(&cells, rounds.iter(), 10).expect("recorded rounds replay");
    println!("{}", trace.render());
    let doc = svg(&engine.swarm, 8);
    std::fs::write("final.svg", &doc).ok();
    eprintln!("gathered {} robots in {round} rounds; final.svg written", cells.len());
}
