//! Quickstart: gather a worst-case line of robots and print the result.
//!
//! ```sh
//! cargo run --release --example quickstart -- 256
//! ```

use grid_gathering::prelude::*;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(128);

    // The Ω(n)-diameter worst case: a 1×n line.
    let swarm = workloads::line(n);

    // Scrambled orientations = the honest "no compass" model.
    let mut engine = Engine::from_positions(
        &swarm,
        OrientationMode::Scrambled(42),
        GatherController::paper(),
        EngineConfig::default(),
    );

    let out = engine
        .run_until_gathered(500 * n as u64 + 10_000)
        .expect("the paper's algorithm gathers every connected swarm");

    println!("workload        : 1x{n} line (diameter = n)");
    println!("rounds          : {} ({:.2} per robot)", out.rounds, out.rounds as f64 / n as f64);
    println!("merges          : {}", out.metrics.total_merged);
    println!("robots remaining: {} (within a 2x2 area)", out.final_robots);
    assert!(engine.swarm.is_gathered());
}
