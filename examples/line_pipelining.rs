//! Watch the Fig. 13/15 dynamics: a mergeless plateau (Fig. 4) whose
//! top row can only shrink through runner reshapement; run states are
//! rendered as `R`, start waves appear every L = 22 rounds.
//!
//! ```sh
//! cargo run --release --example line_pipelining
//! ```

use gather_viz::ascii_runs;
use grid_gathering::prelude::*;

fn main() {
    // Fig. 4 plateau: a 40-wide top row with 9-deep legs. The top row
    // is longer than any local merge, so only good pairs shorten it.
    let cells = workloads::table(40, 9);
    let mut engine = Engine::from_positions(
        &cells,
        OrientationMode::Aligned,
        GatherController::paper(),
        EngineConfig { connectivity: ConnectivityCheck::Always, ..Default::default() },
    );

    let mut round = 0u64;
    while !engine.swarm.is_gathered() && round < 2000 {
        if round.is_multiple_of(11) {
            println!("--- round {round}, robots {} ---", engine.swarm.len());
            println!("{}", ascii_runs(&engine.swarm, 0));
        }
        engine.step().expect("connectivity never breaks");
        round += 1;
    }
    println!("gathered after {round} rounds");
}
