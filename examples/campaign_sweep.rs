//! A campaign end-to-end, in library form: a 3-family × 4-size ×
//! 8-seed sweep of the paper's algorithm against both baselines,
//! streamed to a JSONL file and folded into scaling tables.
//!
//! The same sweep from the shell:
//!
//! ```sh
//! cargo run --release --bin campaign -- run \
//!     --families line,table,random-blob --sizes 16,32,64,96 \
//!     --seeds 0..8 --threads 0 --out sweep.jsonl
//! cargo run --release --bin campaign -- summarize --in sweep.jsonl
//! ```
//!
//! Run with `cargo run --release --example campaign_sweep`.

use grid_gathering::campaign::{
    executor, load_completed, summarize, CampaignSpec, ControllerKind, JsonlSink, Scenario,
};
use grid_gathering::workloads::Family;

fn main() {
    let mut spec = CampaignSpec::named("sweep-example");
    spec.families = vec![Family::Line, Family::Table, Family::RandomBlob];
    spec.sizes = vec![16, 32, 64, 96];
    spec.seeds = (0..8).collect();
    spec.controllers = ControllerKind::ALL.to_vec();
    spec.validate().expect("well-formed spec");

    let jobs = spec.expand();
    println!("expanded {} scenarios; running on all cores...\n", jobs.len());

    let mut out = std::env::temp_dir();
    out.push("campaign_sweep_example.jsonl");
    let mut sink = JsonlSink::create(&out).expect("create result file");

    // Stream results to disk as they complete; print a line every 24.
    let records = executor::execute_scenarios(&jobs, 0, |done, total, rec| {
        sink.write(rec).expect("stream record");
        if done % 24 == 0 || done == total {
            println!("  [{done}/{total}] latest: {} rounds={}", rec.id, rec.rounds);
        }
    });
    drop(sink);

    // The file doubles as the resume checkpoint: a second run would
    // skip everything.
    let done = load_completed(&out).expect("read checkpoint");
    let pending: Vec<Scenario> =
        jobs.iter().copied().filter(|sc| !done.contains(&sc.id())).collect();
    println!("\ncheckpoint holds {} scenarios; {} pending on resume", done.len(), pending.len());
    assert!(pending.is_empty());

    // Fold the result set into per-family scaling tables. On the line
    // family the paper's controller shows slope ~0.5 rounds/n and a
    // log-log exponent of ~1 — Theorem 1's O(n), measured.
    println!();
    for table in summarize(&records) {
        println!("{}", grid_gathering::analysis::render_markdown(&table));
    }
    println!("raw results: {}", out.display());
}
