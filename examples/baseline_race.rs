//! E8 in miniature: race the paper's O(n) algorithm against the
//! GoToCenter baseline (grid adaptation of the O(n²) plane strategy
//! [DKL+11]) and the sequential greedy strawman.
//!
//! ```sh
//! cargo run --release --example baseline_race -- 512
//! ```

use grid_gathering::prelude::*;

fn run<C: Controller>(name: &str, pts: &[grid_gathering::engine::Point], c: C) {
    let n = pts.len();
    let mut e =
        Engine::from_positions(pts, OrientationMode::Scrambled(3), c, EngineConfig::default());
    match e.run_until_gathered(500 * n as u64 + 20_000) {
        Ok(out) => println!(
            "{name:>12}: {:>7} rounds ({:.2}/robot)",
            out.rounds,
            out.rounds as f64 / n as f64
        ),
        Err(err) => println!("{name:>12}: DID NOT GATHER ({err})"),
    }
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(256);
    let pts = workloads::random_blob(n, 3);
    println!("random blob, n = {}", pts.len());
    run("paper", &pts, GatherController::paper());
    run("go-to-center", &pts, GoToCenter::paper_radius());
    match AsyncGreedy::new(&pts).run(10_000) {
        Ok(out) => {
            println!("{:>12}: {:>7} passes (sequential fair scheduler)", "greedy", out.rounds)
        }
        Err(e) => println!("{:>12}: stalled: {e}", "greedy"),
    }
}
