//! Inner boundaries (Fig. 1): a thick hollow fortress must erode both
//! its outer wall and the rim of its courtyard. The algorithm cannot
//! tell the two boundaries apart and shortens both — exactly as the
//! paper prescribes.
//!
//! ```sh
//! cargo run --release --example hollow_fortress
//! ```

use gather_viz::ascii_runs;
use grid_gathering::prelude::*;

fn main() {
    let cells = workloads::hollow_rectangle(24, 18, 3);
    let n = cells.len();
    let mut engine = Engine::from_positions(
        &cells,
        OrientationMode::Scrambled(7),
        GatherController::paper(),
        EngineConfig { connectivity: ConnectivityCheck::Every(8), ..Default::default() },
    );
    println!("start ({n} robots):\n{}", ascii_runs(&engine.swarm, 0));

    let mut round = 0u64;
    while !engine.swarm.is_gathered() && round < 100_000 {
        engine.step().expect("connected");
        round += 1;
        if engine.metrics().rounds.is_multiple_of(200) {
            println!("round {round}: {} robots left", engine.swarm.len());
        }
    }
    println!("\nfinal (round {round}):\n{}", ascii_runs(&engine.swarm, 1));
    println!("gathered {n} robots in {round} rounds ({:.2}/robot)", round as f64 / n as f64);
}
